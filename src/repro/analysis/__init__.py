"""CFG analyzer: parameter selection, taint, data flow, observation log."""

from repro.analysis.params import (
    CATEGORY_BUFFER, CATEGORY_COUNTER, CATEGORY_FUNCPTR, CATEGORY_REGISTER,
    ParamSelection, observation_points, select_parameters,
)
from repro.analysis.taint import TaintResult, analyze_taint
from repro.analysis.dataflow import ReachingDefs, SliceResult, slice_function
from repro.analysis.obslog import (
    DeviceStateChangeLog, LogEvent, ObservationLogger, RoundLog,
)

__all__ = [
    "CATEGORY_BUFFER", "CATEGORY_COUNTER", "CATEGORY_FUNCPTR",
    "CATEGORY_REGISTER", "ParamSelection", "observation_points",
    "select_parameters",
    "TaintResult", "analyze_taint",
    "ReachingDefs", "SliceResult", "slice_function",
    "DeviceStateChangeLog", "LogEvent", "ObservationLogger", "RoundLog",
]
