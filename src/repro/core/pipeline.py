"""The SEDSpec pipeline facade: Figure 1's three phases, end to end.

Phase ① data collection: run benign training samples twice — once under
the IPT tracer to build the ITC-CFG and select device-state parameters,
once under the observation-point logger to produce the device state
change log.  Phase ② construction: Algorithm 1 + reduction + dependency
recovery.  Phase ③ runtime protection: deploy the spec via
:meth:`GuestVM.attach_sedspec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.analysis import ObservationLogger, analyze_taint, select_parameters
from repro.analysis.params import ParamSelection
from repro.cfg import ITCCFG, build_itc_cfg
from repro.checker import ALL_STRATEGIES, Mode
from repro.devices.base import Device
from repro.ipt import Decoder, IPTTracer
from repro.spec import ExecutionSpec, build_spec
from repro.vm.machine import Attachment, GuestVM

#: Builds a fresh (vm, device) pair — training needs clean boots.
MakeVM = Callable[[], Tuple[GuestVM, Device]]
#: Drives benign training traffic through the vm/device.
Workload = Callable[[GuestVM, Device], None]


@dataclass
class TrainingArtifacts:
    """Everything phase ① and ② produced (useful for inspection/tests)."""

    spec: ExecutionSpec
    selection: ParamSelection
    itc: ITCCFG
    training_rounds: int


def build_execution_spec(make_vm: MakeVM, workload: Workload,
                         reduce_cfg: bool = True) -> TrainingArtifacts:
    """Run the full offline pipeline for one device."""
    # -- pass 1: IPT trace -> ITC-CFG -> parameter selection ---------------
    vm, device = make_vm()
    tracer = device.machine.add_sink(IPTTracer())
    workload(vm, device)
    rounds = Decoder(device.program).decode_stream(tracer.packets)
    itc = build_itc_cfg(device.program, rounds)
    selection = select_parameters(device.program, itc)

    # -- pass 2: observation points -> device state change log --------------
    # Block-type auxiliary info (command decision/end) comes from the
    # taint analysis and is recorded by the instrumented points.
    vm, device = make_vm()
    taint = analyze_taint(device.program)
    logger = device.machine.add_sink(ObservationLogger(
        device.NAME, selection.scalar_params | selection.funcptrs,
        selection.buffers,
        decision_blocks=taint.command_decision_blocks,
        end_blocks=taint.command_end_blocks))
    workload(vm, device)

    # -- phase 2: construction ------------------------------------------------
    spec = build_spec(device.program, logger.log, selection, taint,
                      reduce_cfg=reduce_cfg)
    return TrainingArtifacts(spec=spec, selection=selection, itc=itc,
                             training_rounds=len(logger.log.rounds))


def deploy(vm: GuestVM, device: Device, spec: ExecutionSpec,
           mode: Mode = Mode.ENHANCEMENT,
           strategies=ALL_STRATEGIES,
           backend: str = "compiled",
           recorder=None,
           batch_rounds: int = 0) -> Attachment:
    """Phase ③: put the ES-Checker in front of the device.

    Pass a :class:`repro.telemetry.Recorder` to observe the deployed
    checker (per-strategy check counts, round latency); telemetry stays
    off otherwise.  ``batch_rounds > 0`` opts into the credit-batch
    discipline (see :meth:`GuestVM.attach_sedspec`)."""
    return vm.attach_sedspec(device.NAME, spec, mode=mode,
                             strategies=strategies, backend=backend,
                             recorder=recorder,
                             batch_rounds=batch_rounds)
