"""SEDSpec core: the end-to-end pipeline facade."""

from repro.core.pipeline import (
    TrainingArtifacts, build_execution_spec, deploy,
)

__all__ = ["TrainingArtifacts", "build_execution_spec", "deploy"]
