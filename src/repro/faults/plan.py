"""Deterministic fault plans and the injector that evaluates them.

Determinism is the whole point: a chaos campaign must be *replayable*
(same seed, same faults, byte-for-byte identical report) and the inline
and multiprocessing fleet paths must see the *same* fault sequence even
though they interleave work differently.  Two rules make that hold:

1. Every injection decision is a **keyed draw**: the RNG is seeded from
   ``sha256(plan.seed : site : spec-index : round : key)``, so the answer
   depends only on the plan and the identity of the event — never on how
   many draws happened before it, which process asks, or wall time.
2. Fault *placement* that must be order-identical across execution modes
   (worker crash/hang ops) is materialized into the request schedule
   up front (:func:`repro.fleet.loadgen.inject_schedule_faults`) rather
   than decided at run time.

``max_fires`` budgets are tracked per injector instance; they bound local
fire counts (and feed telemetry) but, being stateful, only sites whose
events are evaluated by a single sequential consumer should rely on them
for exact replay.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError

#: Every injection site the stack exposes.
SITES = (
    "ipt.drop",          # tracer: swallow an emitted packet
    "ipt.corrupt",       # byte stream: flip byte(s) of the raw trace
    "ipt.overflow",      # tracer: buffer overflow -> OVF + PSB emitted
    "interp.step",       # IR interpreter: transient per-round step fault
    "interp.stall",      # IR interpreter: round stalls past its deadline
    "registry.truncate",  # spec envelope: cut the persisted file short
    "registry.bitflip",  # spec envelope: flip one byte on disk
    "worker.crash",      # fleet worker process dies mid-batch
    "worker.hang",       # fleet worker stops responding (watchdog food)
    "worker.slow_start",  # respawned worker is slow to come up
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it strikes and how often.

    * ``probability`` — chance the fault fires for a given event key;
    * ``max_fires`` — optional budget across the injector's lifetime;
    * ``trigger_round`` — fire only for this round/trial index (exact
      match), the deterministic "round N breaks" arm;
    * ``arg`` — site-specific intensity knob (bytes to corrupt, stall
      milliseconds, packets dropped by an overflow...).
    """

    site: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    trigger_round: Optional[int] = None
    arg: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise WorkloadError(
                f"unknown fault site {self.site!r}; choose from {SITES}")
        if not 0.0 <= self.probability <= 1.0:
            raise WorkloadError("fault probability must be in [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the armed fault specs: everything a campaign needs to
    reproduce its exact fault sequence."""

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def for_sites(self, *prefixes: str) -> "FaultPlan":
        """The sub-plan whose sites start with any of *prefixes*."""
        kept = tuple(s for s in self.specs
                     if any(s.site.startswith(p) for p in prefixes))
        return FaultPlan(self.seed, kept)

    def has_site(self, *prefixes: str) -> bool:
        return any(s.site.startswith(p) for p in prefixes
                   for s in self.specs)


def plan_to_json(plan: FaultPlan) -> str:
    return json.dumps({
        "seed": plan.seed,
        "specs": [{"site": s.site, "probability": s.probability,
                   "max_fires": s.max_fires,
                   "trigger_round": s.trigger_round, "arg": s.arg}
                  for s in plan.specs],
    }, sort_keys=True)


def plan_from_json(payload: str) -> FaultPlan:
    obj = json.loads(payload)
    return FaultPlan(obj["seed"], tuple(
        FaultSpec(site=s["site"], probability=s["probability"],
                  max_fires=s.get("max_fires"),
                  trigger_round=s.get("trigger_round"),
                  arg=s.get("arg", 1))
        for s in obj["specs"]))


def keyed_rng(seed: int, site: str, key: str) -> random.Random:
    """An RNG whose stream depends only on (seed, site, key).

    Built on sha256 — never on Python's randomized ``hash()`` — so the
    same inputs give the same draws in every process on every run.
    """
    digest = hashlib.sha256(f"{seed}:{site}:{key}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


class FaultInjector:
    """Evaluates a :class:`FaultPlan` with keyed, order-independent draws.

    One injector may be consulted from many components; ``fired`` counts
    are aggregated per site for campaign reports and telemetry.
    """

    def __init__(self, plan: FaultPlan, recorder=None):
        self.plan = plan
        self._by_site: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.specs):
            self._by_site.setdefault(spec.site, []).append((index, spec))
        self.fired: Dict[str, int] = {}
        self._budget: Dict[int, int] = {
            i: s.max_fires for i, s in enumerate(plan.specs)
            if s.max_fires is not None}
        self._telemetry = None
        if recorder is not None:
            from repro.telemetry.instruments import FaultTelemetry
            self._telemetry = FaultTelemetry(recorder)

    def armed(self, site: str) -> bool:
        return site in self._by_site

    def decide(self, site: str, round_: int = 0,
               key: str = "") -> Optional[FaultSpec]:
        """Should *site* fail for this event?  Returns the spec that
        fired (first match wins) or ``None``."""
        specs = self._by_site.get(site)
        if not specs:
            return None
        for index, spec in specs:
            if (spec.trigger_round is not None
                    and spec.trigger_round != round_):
                continue
            budget = self._budget.get(index)
            if budget is not None and budget <= 0:
                continue
            if spec.probability < 1.0:
                rng = keyed_rng(self.plan.seed, site,
                                f"{index}:{round_}:{key}")
                if rng.random() >= spec.probability:
                    continue
            if budget is not None:
                self._budget[index] = budget - 1
            self.fired[site] = self.fired.get(site, 0) + 1
            if self._telemetry is not None:
                self._telemetry.record(site)
            return spec
        return None

    def rng(self, site: str, round_: int = 0,
            key: str = "") -> random.Random:
        """A keyed RNG for shaping a fault that already fired (which byte
        to flip, how long to stall) — same determinism contract."""
        return keyed_rng(self.plan.seed, site, f"shape:{round_}:{key}")

    def fired_total(self) -> int:
        return sum(self.fired.values())


# -- byte/file corruption helpers (the registry + stream fault arms) ---------

def corrupt_bytes(data: bytes, injector: FaultInjector,
                  round_: int = 0, key: str = "") -> bytes:
    """Apply armed ``ipt.corrupt`` faults to a raw trace: flips ``arg``
    bytes at keyed positions.  Returns *data* unchanged if nothing fires
    or the stream is empty."""
    if not data:
        return data
    spec = injector.decide("ipt.corrupt", round_=round_, key=key)
    if spec is None:
        return data
    rng = injector.rng("ipt.corrupt", round_=round_, key=key)
    out = bytearray(data)
    for _ in range(max(1, spec.arg)):
        pos = rng.randrange(len(out))
        flip = 1 << rng.randrange(8)
        out[pos] ^= flip
    return bytes(out)


def corrupt_file(path: str, injector: FaultInjector,
                 key: str = "") -> Optional[str]:
    """Apply armed ``registry.truncate``/``registry.bitflip`` faults to a
    persisted spec envelope.  Returns the fault kind applied (or None).

    Truncation keeps a keyed fraction of the file; a bitflip XORs one
    byte in place.  Both leave a file the loader must survive."""
    spec = injector.decide("registry.truncate", key=key)
    if spec is not None:
        with open(path, "rb") as handle:
            blob = handle.read()
        rng = injector.rng("registry.truncate", key=key)
        cut = rng.randrange(len(blob)) if blob else 0
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        return "truncate"
    spec = injector.decide("registry.bitflip", key=key)
    if spec is not None:
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        if blob:
            rng = injector.rng("registry.bitflip", key=key)
            pos = rng.randrange(len(blob))
            blob[pos] ^= 1 << rng.randrange(8)
            with open(path, "wb") as handle:
                handle.write(bytes(blob))
        return "bitflip"
    return None


def corrupt_cache_dir(cache_dir: str, injector: FaultInjector
                      ) -> List[Tuple[str, str]]:
    """Run the registry fault arms over every persisted spec envelope.
    Returns [(filename, fault kind)] for the campaign report."""
    applied: List[Tuple[str, str]] = []
    if not os.path.isdir(cache_dir):
        return applied
    for name in sorted(os.listdir(cache_dir)):
        if not name.endswith(".spec.json"):
            continue
        kind = corrupt_file(os.path.join(cache_dir, name), injector,
                            key=name)
        if kind is not None:
            applied.append((name, kind))
    return applied
