"""repro.faults: deterministic, seed-replayable fault injection.

The subsystem has two halves:

* :mod:`repro.faults.plan` — the :class:`FaultPlan`/:class:`FaultInjector`
  core.  A plan names per-site fault specs (probability / max-fires /
  trigger-round arms); an injector evaluates them with *keyed* RNG draws
  derived from ``sha256(seed, site, key)``, so a decision depends only on
  the plan and the identity of the event — never on process, thread, or
  call order.  Replaying a seed replays the exact fault sequence.
* :mod:`repro.faults.chaos` — the campaign harness behind ``repro
  chaos``: seeded fault campaigns over the fleet load generator plus a
  decoder-recovery experiment, gated on the two safety invariants (no
  CVE escapes under fail-closed; no benign tenant is security-quarantined
  by an injected infrastructure fault).
"""

from repro.faults.plan import (
    SITES, FaultInjector, FaultPlan, FaultSpec, corrupt_bytes,
    corrupt_cache_dir, corrupt_file, keyed_rng, plan_from_json,
    plan_to_json,
)
from repro.faults.chaos import (
    DEFAULT_FAULT_SPECS, CampaignConfig, CampaignReport, SeedOutcome,
    decoder_recovery_experiment, run_campaign, run_seed, seeded_cves,
    write_report,
)

__all__ = [
    "SITES", "FaultInjector", "FaultPlan", "FaultSpec", "corrupt_bytes",
    "corrupt_cache_dir", "corrupt_file", "keyed_rng", "plan_from_json",
    "plan_to_json",
    "DEFAULT_FAULT_SPECS", "CampaignConfig", "CampaignReport",
    "SeedOutcome", "decoder_recovery_experiment", "run_campaign",
    "run_seed", "seeded_cves", "write_report",
]
