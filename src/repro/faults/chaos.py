"""Chaos campaigns: seeded fault injection with safety invariants.

A campaign runs the fleet loadgen under an armed :class:`FaultPlan` —
same seed, same faults, byte-for-byte identical report — and checks the
two invariants that make degradation *safe* rather than merely graceful:

* **I1 — no escape (fail-closed):** every tenant carrying a seeded CVE
  is detected and quarantined; an injected infrastructure fault may
  *refuse* the exploit round (that is fail-closed working as designed)
  but must never let it run unvetted.
* **I2 — no collateral:** no benign tenant is security-quarantined.
  Injected infra faults degrade to ``TRACE_GAP``/shed outcomes, which by
  construction never feed quarantine; if one does, the infra/security
  boundary has a hole.

Campaign reports carry no wall-clock fields and serialize with sorted
keys, so the same seed reproduces the same bytes — replayability is the
debugging story: a failing campaign IS its own reproducer.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import (
    FaultInjector, FaultPlan, FaultSpec, corrupt_cache_dir, plan_to_json,
)

#: Devices hosting the five seeded CVEs (one detectable CVE per device).
DEFAULT_DEVICES = ("fdc", "sdhci", "scsi", "ehci", "pcnet")

#: The default armed faults: every site, at probabilities low enough
#: that benign service continues (and the seeded exploit ops still get
#: served and detected) but high enough that every arm fires across a
#: default campaign.
DEFAULT_FAULT_SPECS = (
    # ipt.drop / ipt.overflow are *per-packet* draws, and a busy op pushes
    # thousands of packets, so their probabilities sit orders of magnitude
    # below the per-event arms or every busy op would lose its trace.
    FaultSpec("ipt.corrupt", probability=0.02),
    FaultSpec("ipt.drop", probability=5e-05),
    FaultSpec("ipt.overflow", probability=2e-05),
    FaultSpec("interp.step", probability=0.01),
    FaultSpec("interp.stall", probability=0.005, arg=250),
    FaultSpec("registry.truncate", probability=0.25),
    FaultSpec("registry.bitflip", probability=0.25),
    FaultSpec("worker.crash", probability=0.04, max_fires=2),
    FaultSpec("worker.hang", probability=0.0),   # needs a pool watchdog
    FaultSpec("worker.slow_start", probability=0.5, arg=2),
)


@dataclass(frozen=True)
class CampaignConfig:
    seeds: Tuple[int, ...] = (101, 102, 103, 104, 105)
    policy: str = "fail-closed"     # DegradationPolicy value
    max_retries: int = 2
    devices: Tuple[str, ...] = DEFAULT_DEVICES
    tenants: int = 10
    batches_per_tenant: int = 4
    ops_per_batch: int = 3
    #: one CVE per device is seeded explicitly; this adds fraction-drawn
    #: extras on top (kept 0 by default: 5 CVEs, 5 benign tenants)
    inject_fraction: float = 0.0
    workers: int = 2
    inline: bool = True             # reproducible by construction
    specs: Tuple[FaultSpec, ...] = DEFAULT_FAULT_SPECS
    cache_dir: Optional[str] = None  # None: throwaway tempdir per seed


@dataclass
class SeedOutcome:
    """One seed's run: fault materialization, fleet stats, invariants."""

    seed: int
    fault_batches: Dict[str, int] = field(default_factory=dict)
    registry_corruptions: int = 0
    corrupt_rejected: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    attacked: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    cves_detected: int = 0
    cves_total: int = 0
    escapes: List[str] = field(default_factory=list)
    false_quarantines: List[str] = field(default_factory=list)

    @property
    def i1_ok(self) -> bool:
        return not self.escapes

    @property
    def i2_ok(self) -> bool:
        return not self.false_quarantines


@dataclass
class CampaignReport:
    policy: str
    seeds: Tuple[int, ...]
    plan_json: str
    outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(o.i1_ok and o.i2_ok for o in self.outcomes)

    @property
    def total_detected(self) -> int:
        return sum(o.cves_detected for o in self.outcomes)

    @property
    def total_cves(self) -> int:
        return sum(o.cves_total for o in self.outcomes)

    def to_obj(self) -> Dict:
        return {
            "policy": self.policy,
            "seeds": list(self.seeds),
            "plan": json.loads(self.plan_json),
            "passed": self.passed,
            "cves": {"detected": self.total_detected,
                     "total": self.total_cves},
            "outcomes": [{
                "seed": o.seed,
                "fault_batches": dict(sorted(o.fault_batches.items())),
                "registry_corruptions": o.registry_corruptions,
                "corrupt_rejected": o.corrupt_rejected,
                "stats": dict(sorted(o.stats.items())),
                "attacked": sorted(o.attacked),
                "quarantined": sorted(o.quarantined),
                "cves_detected": o.cves_detected,
                "cves_total": o.cves_total,
                "escapes": sorted(o.escapes),
                "false_quarantines": sorted(o.false_quarantines),
                "i1_no_escape": o.i1_ok,
                "i2_no_collateral": o.i2_ok,
            } for o in self.outcomes],
        }

    def to_json(self) -> str:
        """Byte-for-byte reproducible: sorted keys, no wall-clock."""
        return json.dumps(self.to_obj(), sort_keys=True, indent=2) + "\n"

    def describe(self) -> str:
        lines = [f"chaos campaign: policy={self.policy} "
                 f"seeds={list(self.seeds)} "
                 f"{'PASS' if self.passed else 'FAIL'}",
                 f"  CVEs detected: {self.total_detected}"
                 f"/{self.total_cves}"]
        for o in self.outcomes:
            stats = o.stats
            lines.append(
                f"  seed {o.seed}: "
                f"completed={stats.get('completed', 0)} "
                f"trace_gaps={stats.get('trace_gaps', 0)} "
                f"infra={stats.get('infra_failures', 0)} "
                f"shed={stats.get('shed', 0)} "
                f"respawns={stats.get('worker_respawns', 0)} "
                f"quarantined={len(o.quarantined)}/{len(o.attacked)} "
                f"I1={'ok' if o.i1_ok else 'ESCAPE:' + str(o.escapes)} "
                f"I2={'ok' if o.i2_ok else 'FALSE-Q:' + str(o.false_quarantines)}")
        return "\n".join(lines)


#: FleetStats fields echoed into the report — every one deterministic
#: under a seeded inline run (no wall-clock, no queue races).
_STAT_FIELDS = (
    "requests", "completed", "rejected", "faults", "lost", "detections",
    "quarantined_instances", "worker_respawns", "instance_respawns",
    "trace_gaps", "infra_failures", "shed", "circuit_opens",
    "watchdog_kills", "io_rounds",
)


def seeded_cves(devices) -> List[str]:
    """One detectable CVE per device, in device order."""
    from repro.fleet.loadgen import detectable_cves

    picks: List[str] = []
    for device in devices:
        pool = detectable_cves([device])
        if pool:
            picks.append(sorted(pool)[0])
    return picks


def run_seed(config: CampaignConfig, seed: int,
             recorder=None) -> SeedOutcome:
    """One campaign trial: build load, arm faults, run the fleet, judge
    the invariants."""
    from repro.checker import DegradationConfig, DegradationPolicy
    from repro.fleet.loadgen import build_load, inject_schedule_faults
    from repro.fleet.registry import SpecRegistry
    from repro.fleet.supervisor import FleetConfig, FleetSupervisor

    plan = FaultPlan(seed, config.specs)
    cves = seeded_cves(config.devices)
    plans, schedule = build_load(
        list(config.devices), config.tenants,
        config.batches_per_tenant, config.ops_per_batch,
        inject_cves=cves, inject_fraction=config.inject_fraction,
        seed=seed)
    schedule = inject_schedule_faults(schedule, plan)
    outcome = SeedOutcome(seed=seed)
    for batch in schedule:
        for op in batch.ops:
            if op.kind in ("crash", "hang") and op.seed >= 0:
                outcome.fault_batches[op.kind] = \
                    outcome.fault_batches.get(op.kind, 0) + 1
    cleanup = None
    cache_dir = config.cache_dir
    if cache_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="chaos-registry-")
        cache_dir = cleanup.name
    try:
        # Train (prime) with one registry, corrupt the persisted
        # envelopes, then serve with a *fresh* registry so the loader's
        # recovery path (reject + retrain) is what the fleet exercises.
        trainer = SpecRegistry(cache_dir=cache_dir)
        trainer.prime(sorted({(b.device, b.qemu_version)
                              for b in schedule}))
        if plan.has_site("registry."):
            injector = FaultInjector(plan.for_sites("registry."))
            applied = corrupt_cache_dir(cache_dir, injector)
            outcome.registry_corruptions = len(applied)
        registry = SpecRegistry(cache_dir=cache_dir)
        degradation = DegradationConfig(
            policy=DegradationPolicy(config.policy),
            max_retries=config.max_retries)
        supervisor = FleetSupervisor(
            FleetConfig(workers=config.workers, inline=config.inline,
                        cache_dir=cache_dir,
                        degradation=degradation, fault_plan=plan),
            registry=registry, recorder=recorder)
        result = supervisor.run(schedule, plans)
        outcome.corrupt_rejected = registry.stats.corrupt_rejected
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    stats = result.stats
    outcome.stats = {name: getattr(stats, name)
                     for name in _STAT_FIELDS}
    outcome.attacked = result.attacked_tenants()
    outcome.quarantined = result.quarantined_tenants()
    attacked = set(outcome.attacked)
    outcome.cves_total = len(attacked)
    for tenant in sorted(attacked):
        summary = result.tenants[tenant]
        if summary.detections > 0 or summary.quarantined:
            outcome.cves_detected += 1
        if summary.exploit_escapes > 0:
            # An exploit round ran to completion with no detection.
            # (A *refused* exploit round — trace gap, shed, rejected —
            # is fail-closed working as designed, not an escape.)
            outcome.escapes.append(tenant)
    outcome.false_quarantines = sorted(
        t for t in outcome.quarantined if t not in attacked)
    return outcome


def run_campaign(config: Optional[CampaignConfig] = None,
                 recorder=None) -> CampaignReport:
    """The full seeded campaign: one fleet run per seed."""
    config = config or CampaignConfig()
    plan_json = plan_to_json(FaultPlan(0, config.specs))
    report = CampaignReport(policy=config.policy,
                            seeds=tuple(config.seeds),
                            plan_json=plan_json)
    for seed in config.seeds:
        report.outcomes.append(run_seed(config, seed,
                                        recorder=recorder))
    return report


@dataclass
class LadderOutcome:
    """One graduated-ladder scenario run (see
    :func:`run_ladder_scenario`).  Batch indices are the first batch in
    which each rung fired (-1: never)."""

    tenant: str = ""
    device: str = ""
    snapshot_taken: bool = False
    throttle_batch: int = -1
    restore_batch: int = -1
    fence_batch: int = -1
    throttles: int = 0
    restores: int = 0
    fences: int = 0
    quarantined: bool = False
    fenced: bool = False
    #: ops served after the fence rung fired (must be 0: fence sheds all)
    served_after_fence: int = 0

    @property
    def ladder_in_order(self) -> bool:
        """Rung 1 fired no later than rung 2, rung 2 no later than
        rung 3, and every rung actually fired."""
        return (0 <= self.throttle_batch <= self.restore_batch
                <= self.fence_batch)

    @property
    def i2_ok(self) -> bool:
        """Extended no-collateral invariant: a benign tenant driven
        through the whole ladder — including a snapshot restore — ends
        infrastructure-fenced, never security-quarantined."""
        return not self.quarantined


def run_ladder_scenario(device: str = "fdc", backend: str = "compiled",
                        healthy_batches: int = 2,
                        faulty_batches: int = 3,
                        ops_per_batch: int = 4,
                        seed: int = 207) -> LadderOutcome:
    """Drive one benign tenant through the graduated response ladder.

    Phase 1 serves *healthy_batches* of benign traffic (the policy arms
    the restore rung, so a healthy snapshot is captured).  Phase 2 arms
    a certain-fire ``interp.step`` infrastructure fault: every vetted
    round degrades to a trace gap, consecutive strikes accrue, and the
    ladder must fire **in order** — throttle (circuit opens), then
    snapshot restore, then the infrastructure fence — while the tenant,
    being benign and only infra-unlucky, is never security-quarantined
    (the I2 extension the policy layer adds).
    """
    import random

    from repro.fleet.loadgen import RequestBatch, sample_benign_op
    from repro.fleet.registry import SpecRegistry
    from repro.fleet.worker import FleetWorker
    from repro.policy.model import PolicySet, TenantPolicy

    policy = TenantPolicy(policy_id="ladder-test", throttle_after=2,
                          circuit_cooldown=1, restore_after=3,
                          quarantine_after=5)
    worker = FleetWorker(0, SpecRegistry(), backend=backend,
                         policies=PolicySet(default=policy))
    tenant = f"ladder-{device}"
    outcome = LadderOutcome(tenant=tenant, device=device)
    rng = random.Random(seed)
    seq = 0

    def next_batch() -> RequestBatch:
        nonlocal seq
        batch = RequestBatch(
            tenant, device, "99.0.0", seq,
            tuple(sample_benign_op(device, rng)
                  for _ in range(ops_per_batch)))
        seq += 1
        return batch

    results = []
    for _ in range(healthy_batches):
        results.append(worker.run_batch(next_batch()))
    outcome.snapshot_taken = tenant in worker._snapshots

    plan = FaultPlan(seed, (FaultSpec("interp.step", probability=1.0),))
    injector = FaultInjector(plan.for_sites("interp."))
    worker.injector = injector
    worker.instances[tenant].injector = injector
    for _ in range(faulty_batches):
        results.append(worker.run_batch(next_batch()))

    # The fence is permanent: follow-up traffic (even with the fault
    # disarmed) must be shed, not served — and still not quarantined.
    worker.injector = None
    instance = worker.instances.get(tenant)
    if instance is not None:
        instance.injector = None
    post_fence = worker.run_batch(next_batch())
    outcome.served_after_fence = (post_fence.completed
                                  + post_fence.rejected)
    results.append(post_fence)

    for index, result in enumerate(results):
        if result.policy_throttles and outcome.throttle_batch < 0:
            outcome.throttle_batch = index
        if result.policy_restores and outcome.restore_batch < 0:
            outcome.restore_batch = index
        if result.policy_fences and outcome.fence_batch < 0:
            outcome.fence_batch = index
        outcome.throttles += result.policy_throttles
        outcome.restores += result.policy_restores
        outcome.fences += result.policy_fences
        outcome.quarantined = outcome.quarantined or result.quarantined
        outcome.fenced = outcome.fenced or result.fenced
    return outcome


def decoder_recovery_experiment(seed: int = 7, runs: int = 200,
                                rounds: int = 40) -> Dict[str, float]:
    """Measure PSB resynchronization under injected stream loss.

    Each trial encodes a *rounds*-round packet stream, flips one keyed
    byte, and decodes resiliently.  ``recovered`` means the decoder
    either shrugged the flip off or resumed at a later sync point;
    ``tail_loss`` means the flip hit the final segment so there was no
    sync point left to find (the remainder surfaces as a trace gap —
    never an exception)."""
    from repro.faults.plan import keyed_rng
    from repro.ipt.packets import (
        PSB, Tip, TipPgd, TipPge, Tnt, decode_resilient, encode,
    )

    recovered = 0
    tail_loss = 0
    for trial in range(runs):
        rng = keyed_rng(seed, "decoder.recovery", str(trial))
        packets = []
        for r in range(rounds):
            packets.append(PSB())
            packets.append(TipPge(0x1000 + 16 * r))
            packets.append(Tnt(tuple(rng.random() < 0.5
                                     for _ in range(rng.randrange(1, 7)))))
            packets.append(Tip(0x2000 + 16 * r))
            packets.append(TipPgd(0))
        data = bytearray(encode(packets))
        pos = rng.randrange(len(data))
        data[pos] ^= 1 << rng.randrange(8)
        parsed = decode_resilient(bytes(data))
        if not parsed.gaps:
            recovered += 1
        elif all(g.end < len(data) for g in parsed.gaps):
            recovered += 1      # resynced at a later PSB
        else:
            tail_loss += 1
    return {
        "runs": float(runs),
        "recovered": float(recovered),
        "tail_loss": float(tail_loss),
        "recovery_rate": recovered / runs,
    }


def write_report(report: CampaignReport, path: str) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        handle.write(report.to_json())
