"""Fleet workers: each hosts N guarded instances and drains batches.

:class:`FleetWorker` is the execution core, used identically by the
in-process fallback and by :func:`worker_main`, the multiprocessing entry
point.  Instances are built lazily on a tenant's first batch (specs come
from the shared :class:`~repro.fleet.registry.SpecRegistry`, so a worker
process never retrains); a device fault respawns the instance in place
with bounded retries, after which the tenant is fenced off.

The worker also runs the fleet's per-tenant **circuit breaker** — an
infrastructure guard distinct from security quarantine: after
``circuit_threshold`` *consecutive* infra failures (trace gaps, decode
failures) a tenant's circuit opens and its requests are shed (counted,
never quarantined) until a half-open probe succeeds.  Breaker inputs are
deterministic: tenants are pinned to workers, batches run sequentially,
and a batch requeued after a worker death carries its accumulated
``infra_strikes`` so the breaker survives the respawn that wiped the
worker's memory.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.checker import CheckReport, DEFAULT_DEGRADATION, \
    DegradationConfig, Mode, retrain_reason
from repro.fleet.checkpoint import checkpoint_instance, restore_instance, \
    seal, verify
from repro.fleet.instance import GuardedInstance
from repro.fleet.loadgen import FAULT_OP_KINDS, OpRequest, RequestBatch
from repro.fleet.registry import SpecRegistry
from repro.policy.model import PolicySet, TenantPolicy
from repro.spec.lifecycle import RetrainRecord

#: Graduated-ladder rungs, in firing order (strike-count keyed).
RUNG_THROTTLE, RUNG_RESTORE, RUNG_FENCE = 1, 2, 3


def batch_wants_crash(batch: RequestBatch) -> bool:
    """A live (non-tombstoned) crash-injection op in this batch?"""
    return any(op.kind == "crash" and op.seed >= 0 for op in batch.ops)


def batch_wants_hang(batch: RequestBatch) -> bool:
    """A live (non-tombstoned) hang-injection op in this batch?"""
    return any(op.kind == "hang" and op.seed >= 0 for op in batch.ops)


def tombstone_crashes(batch: RequestBatch) -> RequestBatch:
    """Neutralize crash/hang ops so a requeued batch can drain normally."""
    if not any(op.kind in FAULT_OP_KINDS and op.seed >= 0
               for op in batch.ops):
        return batch
    ops = tuple(OpRequest(op.kind, op.index, -1, op.cve)
                if op.kind in FAULT_OP_KINDS else op for op in batch.ops)
    return replace(batch, ops=ops)


def requeue_batch(batch: RequestBatch) -> RequestBatch:
    """Prepare a batch for redelivery after its worker died: tombstone
    the fault op that killed the worker and record the infra strike so
    the respawned worker's circuit breaker starts where the dead one
    left off."""
    return replace(tombstone_crashes(batch),
                   infra_strikes=batch.infra_strikes + 1)


def instance_injector(fault_plan, recorder=None):
    """The worker-local injector for instance-level fault arms (the
    ipt/interp sites); None when the plan arms none of them."""
    if fault_plan is None:
        return None
    sub = fault_plan.for_sites("ipt.", "interp.")
    if not sub.specs:
        return None
    from repro.faults.plan import FaultInjector
    return FaultInjector(sub, recorder=recorder)


@dataclass
class BatchResult:
    """Per-batch accounting, aggregated by the supervisor."""

    tenant: str
    device: str
    seq: int
    worker_id: int
    submitted: int = 0
    completed: int = 0          # ok + detected rounds
    rejected: int = 0           # refused: instance quarantined
    faults: int = 0             # device crashed serving the request
    detections: int = 0
    instance_respawns: int = 0
    quarantined: bool = False   # instance quarantined after this batch
    quarantine_reason: str = ""
    #: ops refused because the enforcement machinery could not vouch for
    #: them (fail-closed / retry-exhausted trace loss)
    trace_gaps: int = 0
    #: ops whose round hit an infrastructure failure (degraded refusals
    #: plus fail-open degraded allows)
    infra_failures: int = 0
    #: ops shed by an open per-tenant circuit breaker
    shed: int = 0
    #: circuit-breaker open transitions during this batch
    circuit_opens: int = 0
    #: exploit ops that executed to completion *without* a detection —
    #: the chaos invariant I1 counts these as escapes
    exploit_escapes: int = 0
    #: exploit ops refused by degradation/shedding (fail-closed working:
    #: the CVE did not run, but it was not detected either)
    exploit_refusals: int = 0
    #: hot spec swaps performed before this batch's first op
    spec_reloads: int = 0
    #: hot tenant-policy swaps performed before this batch's first op
    policy_reloads: int = 0
    #: resolved policy id/generation this batch ran under
    policy_id: str = ""
    policy_generation: int = 0
    #: graduated-ladder responses fired during this batch
    policy_throttles: int = 0
    policy_restores: int = 0
    policy_fences: int = 0
    #: tenant is infrastructure-fenced (ladder rung 3) after this batch —
    #: deliberately distinct from security ``quarantined``
    fenced: bool = False
    cycles: int = 0
    io_rounds: int = 0
    #: simulated cycles per completed request (latency percentiles)
    op_cycles: Tuple[int, ...] = ()
    wall_seconds: float = 0.0
    reports: Tuple[CheckReport, ...] = ()
    #: rounds flagged as candidate training traces (anomaly-driven
    #: retraining queue); plain picklable records
    retrain: Tuple[RetrainRecord, ...] = ()


@dataclass
class FleetWorker:
    """Hosts the guarded instances of the tenants assigned to it."""

    worker_id: int
    registry: SpecRegistry
    mode: Mode = Mode.PROTECTION
    backend: str = "compiled"
    #: credit-batch size for every hosted instance (0 = per-round vets)
    batch_rounds: int = 0
    max_instance_respawns: int = 1
    degradation: DegradationConfig = DEFAULT_DEGRADATION
    injector: Optional[object] = None
    #: consecutive infra failures that open a tenant's circuit; 0 disables
    circuit_threshold: int = 3
    #: ops shed while open before a half-open probe is let through
    circuit_cooldown: int = 4
    #: declarative per-tenant resilience policies; None falls back to a
    #: policy synthesized from the legacy knobs above, preserving the
    #: fleet's historical behavior bit-for-bit
    policies: Optional[PolicySet] = None
    instances: Dict[str, GuardedInstance] = field(default_factory=dict)
    _respawns: Dict[str, int] = field(default_factory=dict)
    _strikes: Dict[str, int] = field(default_factory=dict)
    _circuit_open: Dict[str, bool] = field(default_factory=dict)
    _shed_since_probe: Dict[str, int] = field(default_factory=dict)
    #: per-tenant policy hot-reload epoch (batch-stamped, like specs)
    _policy_epoch: Dict[str, int] = field(default_factory=dict)
    _policy_sets: Dict[str, PolicySet] = field(default_factory=dict)
    #: highest ladder rung fired during the current strike run
    _rung: Dict[str, int] = field(default_factory=dict)
    #: infrastructure-fenced tenants (ladder rung 3; never security)
    _fenced: Dict[str, bool] = field(default_factory=dict)
    #: last healthy checkpoint per tenant (taken only when the tenant's
    #: policy arms the snapshot-restore rung)
    _snapshots: Dict[str, dict] = field(default_factory=dict)

    # -- policy resolution --------------------------------------------------

    def _legacy_policy(self) -> TenantPolicy:
        return TenantPolicy(
            degradation=self.degradation.policy.value,
            max_retries=self.degradation.max_retries,
            respawn_budget=self.max_instance_respawns,
            throttle_after=self.circuit_threshold,
            circuit_cooldown=max(1, self.circuit_cooldown))

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's resolved policy under its current epoch."""
        policies = self._policy_sets.get(tenant, self.policies)
        if policies is None:
            return self._legacy_policy()
        return policies.resolve(tenant)

    def _maybe_reload_policy(self, batch: RequestBatch,
                             result: BatchResult) -> None:
        """Epoch-based policy hot reload, mirroring the spec mechanism:
        the supervisor stamped this batch with a newer policy
        generation; the swap lands here, before the first op, so the
        previous batch finished wholly under the old policy."""
        tenant = batch.tenant
        if (batch.policy_epoch > self._policy_epoch.get(tenant, 0)
                and batch.policy_digest):
            self._policy_sets[tenant] = \
                self.registry.policies.get(batch.policy_digest)
            self._policy_epoch[tenant] = batch.policy_epoch
            result.policy_reloads += 1

    def _build(self, batch: RequestBatch) -> GuardedInstance:
        # A batch stamped with a generation digest builds straight at
        # that generation (fresh instances after a respawn must not
        # regress to the train-once spec mid-schedule).  Composite
        # tenants get one spec per part; the registry stays per-device.
        spec = self._spec_for(batch.device, batch.qemu_version,
                              batch.spec_digest)
        instance = GuardedInstance(batch.tenant, batch.device,
                                   batch.qemu_version, spec,
                                   mode=self.mode,
                                   backend=self.backend,
                                   degradation=self.policy_for(
                                       batch.tenant).degradation_config(),
                                   injector=self.injector,
                                   batch_rounds=self.batch_rounds)
        instance.spec_epoch = batch.spec_epoch
        instance.spec_digest = batch.spec_digest
        return instance

    def _spec_for(self, device: str, qemu_version: str,
                  spec_digest: str = ""):
        from repro.workloads.profiles import split_device

        parts = split_device(device)
        if spec_digest:
            return self.registry.spec_by_digest(spec_digest)
        if len(parts) > 1:
            return {part: self.registry.get(part, qemu_version)
                    for part in parts}
        return self.registry.get(device, qemu_version)

    def instance_for(self, batch: RequestBatch) -> GuardedInstance:
        instance = self.instances.get(batch.tenant)
        if instance is None:
            instance = self._build(batch)
            self.instances[batch.tenant] = instance
        return instance

    def run_batch(self, batch: RequestBatch) -> BatchResult:
        start = time.perf_counter()
        tenant = batch.tenant
        result = BatchResult(tenant, batch.device, batch.seq,
                             self.worker_id, submitted=len(batch.ops))
        self._maybe_reload_policy(batch, result)
        pol = self.policy_for(tenant)
        result.policy_id = pol.policy_id
        result.policy_generation = self._policy_epoch.get(tenant, 0)
        instance = self.instance_for(batch)
        # Seed the breaker from the batch: strikes accrued before the
        # previous worker died must survive the respawn.  Seeded strikes
        # climb the same ladder in-batch failures do.
        if batch.infra_strikes > self._strikes.get(tenant, 0):
            self._strikes[tenant] = batch.infra_strikes
        instance = self._climb_ladder(batch, pol, result)
        if (batch.spec_epoch > instance.spec_epoch
                and not instance.quarantined):
            # Epoch-based hot reload: the supervisor stamped this batch
            # with a newer generation.  The previous batch finished
            # wholly under the old spec; the swap lands here, before
            # this batch's first op.
            instance.reload_spec(
                self.registry.spec_by_digest(batch.spec_digest),
                batch.spec_epoch, batch.spec_digest)
            result.spec_reloads += 1
        op_cycles = []
        reports = []
        retrain = []
        served = 0
        for op in batch.ops:
            if self._fenced.get(tenant, False):
                # Ladder rung 3: infrastructure fence.  Everything is
                # shed; deliberately *not* a security quarantine.
                result.shed += 1
                if op.kind == "exploit":
                    result.exploit_refusals += 1
                continue
            if pol.rate_quota and served >= pol.rate_quota:
                # Declarative rate quota: overflow past the per-batch
                # cap is shed as a throttle response.
                result.shed += 1
                result.policy_throttles += 1
                if op.kind == "exploit":
                    result.exploit_refusals += 1
                continue
            if self._circuit_open.get(tenant, False):
                since = self._shed_since_probe.get(tenant, 0)
                if since < pol.circuit_cooldown:
                    self._shed_since_probe[tenant] = since + 1
                    result.shed += 1
                    if op.kind == "exploit":
                        result.exploit_refusals += 1
                    continue
                self._shed_since_probe[tenant] = 0   # half-open probe
            served += 1
            outcome = instance.apply(op)
            result.cycles += outcome.cycles
            result.io_rounds += outcome.io_rounds
            if outcome.report is not None:
                # Stamp the resolved policy on the report, mirroring the
                # degradation-policy stamp the checker already applies.
                outcome.report.policy_id = pol.policy_id
                outcome.report.policy_generation = \
                    self._policy_epoch.get(tenant, 0)
                reports.append(outcome.report)
                reason = retrain_reason(outcome.report)
                if reason and op.kind in ("common", "rare"):
                    # Feed the round back to training: the op triple is
                    # enough to replay the exact guest interaction.
                    retrain.append(RetrainRecord(
                        tenant, batch.device, batch.qemu_version,
                        reason, outcome.report.io_key, batch.seq,
                        op.kind, op.index, op.seed))
            infra = (outcome.report is not None
                     and outcome.report.trace_gap)
            if infra:
                result.infra_failures += 1
                self._strikes[tenant] = self._strikes.get(tenant, 0) + 1
                instance = self._climb_ladder(batch, pol, result)
            if outcome.status == "trace_gap":
                result.trace_gaps += 1
                if op.kind == "exploit":
                    result.exploit_refusals += 1
                continue
            if outcome.status == "rejected":
                result.rejected += 1
                if op.kind == "exploit":
                    result.exploit_refusals += 1
                continue
            if outcome.status == "fault":
                result.faults += 1
                instance = self._respawn_or_fence(batch, pol,
                                                  outcome.detail, result)
                continue
            if not infra:
                # A vouched-for round: the tenant's machinery is healthy
                # again, so the strike run ends, an open circuit's
                # successful probe closes it, and the ladder resets.
                self._strikes[tenant] = 0
                self._circuit_open.pop(tenant, None)
                self._rung.pop(tenant, None)
            result.completed += 1
            op_cycles.append(outcome.cycles)
            if outcome.status == "detected":
                result.detections += 1
            elif op.kind == "exploit":
                # The exploit round ran to completion and nothing
                # flagged it: that is an I1 escape, full stop.
                result.exploit_escapes += 1
        result.quarantined = instance.quarantined
        result.quarantine_reason = instance.quarantine_reason
        result.fenced = self._fenced.get(tenant, False)
        result.op_cycles = tuple(op_cycles)
        result.reports = tuple(reports)
        result.retrain = tuple(retrain)
        result.wall_seconds = time.perf_counter() - start
        if (pol.restore_after > 0 and not result.fenced
                and not instance.quarantined
                and self._strikes.get(tenant, 0) == 0):
            # The batch ended healthy and this tenant's policy arms the
            # snapshot-restore rung: capture the rollback point.
            self._snapshots[tenant] = checkpoint_instance(instance)
        return result

    def _climb_ladder(self, batch: RequestBatch, pol: TenantPolicy,
                      result: BatchResult) -> GuardedInstance:
        """Fire every graduated-ladder rung the tenant's consecutive
        strike count has reached, in order, at most once per strike run
        (a vouched-for round resets the run)."""
        tenant = batch.tenant
        strikes = self._strikes.get(tenant, 0)
        rung = self._rung.get(tenant, 0)
        if (pol.throttle_after > 0 and strikes >= pol.throttle_after
                and not self._circuit_open.get(tenant, False)):
            self._open_circuit(tenant, result)
            result.policy_throttles += 1
            rung = max(rung, RUNG_THROTTLE)
        if (pol.restore_after > 0 and strikes >= pol.restore_after
                and rung < RUNG_RESTORE):
            rung = RUNG_RESTORE
            snapshot = self._snapshots.get(tenant)
            if snapshot is not None:
                self._restore_snapshot(batch, snapshot)
                result.policy_restores += 1
        if (pol.quarantine_after > 0 and strikes >= pol.quarantine_after
                and rung < RUNG_FENCE):
            rung = RUNG_FENCE
            self._fenced[tenant] = True
            result.policy_fences += 1
            result.fenced = True
        self._rung[tenant] = rung
        return self.instances.get(tenant) or self.instance_for(batch)

    def _restore_snapshot(self, batch: RequestBatch,
                          snapshot: dict) -> None:
        """Ladder rung 2: roll the instance back to its last healthy
        checkpoint.  Breaker state is deliberately *not* rolled back —
        the strike run continues toward the fence rung if the
        infrastructure stays unhealthy."""
        spec = self._spec_for(snapshot["device"],
                              snapshot["qemu_version"],
                              snapshot["spec_digest"])
        instance = restore_instance(
            snapshot, spec,
            degradation=self.policy_for(
                batch.tenant).degradation_config(),
            injector=self.injector)
        if (batch.spec_epoch > instance.spec_epoch
                and not instance.quarantined):
            # The snapshot predates a spec hot reload this batch is
            # stamped with: bring the restored instance forward so the
            # rollback never regresses the deployed spec generation.
            instance.reload_spec(
                self.registry.spec_by_digest(batch.spec_digest),
                batch.spec_epoch, batch.spec_digest)
        self.instances[batch.tenant] = instance

    def _open_circuit(self, tenant: str, result: BatchResult) -> None:
        self._circuit_open[tenant] = True
        self._shed_since_probe[tenant] = 0
        result.circuit_opens += 1

    def _respawn_or_fence(self, batch: RequestBatch, pol: TenantPolicy,
                          detail: str,
                          result: BatchResult) -> GuardedInstance:
        """An unhandled device fault killed the instance: rebuild it from
        the shared spec (bounded by the tenant's declarative respawn
        budget), else quarantine the tenant."""
        spent = self._respawns.get(batch.tenant, 0)
        if spent < pol.respawn_budget:
            self._respawns[batch.tenant] = spent + 1
            result.instance_respawns += 1
            instance = self._build(batch)
        else:
            instance = self.instances[batch.tenant]
            instance.quarantine(f"fault budget exhausted: {detail}")
        self.instances[batch.tenant] = instance
        return instance

    # -- checkpoint / restore (live migration) -------------------------------

    def checkpoint_tenant(self, tenant: str) -> Optional[dict]:
        """Sealed migration envelope for *tenant*: the instance
        checkpoint plus the worker-side breaker/ladder/respawn counters,
        so a half-open probe does not reset across a shard move.  None
        when the tenant never built an instance here."""
        instance = self.instances.get(tenant)
        if instance is None:
            return None
        envelope = checkpoint_instance(instance)
        envelope["breaker"] = {
            "strikes": self._strikes.get(tenant, 0),
            "circuit_open": self._circuit_open.get(tenant, False),
            "shed_since_probe": self._shed_since_probe.get(tenant, 0),
            "rung": self._rung.get(tenant, 0),
            "fenced": self._fenced.get(tenant, False),
            "respawns": self._respawns.get(tenant, 0),
        }
        envelope["policy"] = {
            "epoch": self._policy_epoch.get(tenant, 0),
            "digest": (self._policy_sets[tenant].digest
                       if tenant in self._policy_sets else ""),
        }
        return seal(envelope)

    def restore_tenant(self, envelope: dict) -> GuardedInstance:
        """Install a migrated tenant from its sealed envelope: rebuild
        the instance at the envelope's spec generation, overlay the
        serialized state, and seed the breaker/ladder counters."""
        verify(envelope)
        tenant = envelope["tenant"]
        policy = envelope.get("policy", {})
        if policy.get("digest"):
            self._policy_sets[tenant] = \
                self.registry.policies.get(policy["digest"])
            self._policy_epoch[tenant] = policy.get("epoch", 0)
        spec = self._spec_for(envelope["device"],
                              envelope["qemu_version"],
                              envelope["spec_digest"])
        instance = restore_instance(
            envelope, spec,
            degradation=self.policy_for(tenant).degradation_config(),
            injector=self.injector)
        self.instances[tenant] = instance
        breaker = envelope.get("breaker")
        if breaker is not None:
            self._strikes[tenant] = breaker["strikes"]
            if breaker["circuit_open"]:
                self._circuit_open[tenant] = True
            self._shed_since_probe[tenant] = breaker["shed_since_probe"]
            if breaker["rung"]:
                self._rung[tenant] = breaker["rung"]
            if breaker["fenced"]:
                self._fenced[tenant] = True
            self._respawns[tenant] = breaker["respawns"]
        return instance


def worker_main(worker_id: int, cache_dir: Optional[str], mode: Mode,
                backend: str, max_instance_respawns: int,
                inbox, outbox, fault_plan=None,
                degradation: Optional[DegradationConfig] = None,
                circuit_threshold: int = 3, circuit_cooldown: int = 4,
                slow_start: float = 0.0,
                policy_digest: str = "",
                batch_rounds: int = 0) -> None:
    """Multiprocessing entry: drain ("batch", RequestBatch) messages
    until ("stop",).  Specs — and the fleet's configured policy set,
    named by *policy_digest* — are loaded from the shared disk cache.
    ("checkpoint", tenant) answers with the tenant's sealed migration
    envelope; ("restore", envelope) installs a migrated tenant."""
    if slow_start > 0:
        # worker.slow_start arm: the respawned process takes its time
        # coming up; dispatched batches just wait in the inbox.
        time.sleep(slow_start)
    registry = SpecRegistry(cache_dir=cache_dir)
    policies = (registry.policies.get(policy_digest)
                if policy_digest else None)
    worker = FleetWorker(worker_id, registry, mode=mode, backend=backend,
                         batch_rounds=batch_rounds,
                         max_instance_respawns=max_instance_respawns,
                         degradation=degradation or DEFAULT_DEGRADATION,
                         injector=instance_injector(fault_plan),
                         circuit_threshold=circuit_threshold,
                         circuit_cooldown=circuit_cooldown,
                         policies=policies)
    outbox.put(("ready", worker_id))
    while True:
        message = inbox.get()
        if message[0] == "stop":
            break
        if message[0] == "checkpoint":
            outbox.put(("checkpoint", worker_id,
                        worker.checkpoint_tenant(message[1])))
            continue
        if message[0] == "restore":
            worker.restore_tenant(message[1])
            outbox.put(("restored", worker_id, message[1]["tenant"]))
            continue
        batch: RequestBatch = message[1]
        if batch_wants_crash(batch):
            # Fault-injection hook: die the way a segfaulting QEMU
            # worker would — no goodbye message, exit code and all.
            os._exit(13)
        if batch_wants_hang(batch):
            # Stop responding without dying: only the supervisor's
            # watchdog can get this worker's lane moving again.
            while True:
                time.sleep(3600)
        outbox.put(("result", worker_id, worker.run_batch(batch)))
