"""Fleet workers: each hosts N guarded instances and drains batches.

:class:`FleetWorker` is the execution core, used identically by the
in-process fallback and by :func:`worker_main`, the multiprocessing entry
point.  Instances are built lazily on a tenant's first batch (specs come
from the shared :class:`~repro.fleet.registry.SpecRegistry`, so a worker
process never retrains); a device fault respawns the instance in place
with bounded retries, after which the tenant is fenced off.

The worker also runs the fleet's per-tenant **circuit breaker** — an
infrastructure guard distinct from security quarantine: after
``circuit_threshold`` *consecutive* infra failures (trace gaps, decode
failures) a tenant's circuit opens and its requests are shed (counted,
never quarantined) until a half-open probe succeeds.  Breaker inputs are
deterministic: tenants are pinned to workers, batches run sequentially,
and a batch requeued after a worker death carries its accumulated
``infra_strikes`` so the breaker survives the respawn that wiped the
worker's memory.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.checker import CheckReport, DEFAULT_DEGRADATION, \
    DegradationConfig, Mode, retrain_reason
from repro.fleet.instance import GuardedInstance
from repro.fleet.loadgen import FAULT_OP_KINDS, OpRequest, RequestBatch
from repro.fleet.registry import SpecRegistry
from repro.spec.lifecycle import RetrainRecord


def batch_wants_crash(batch: RequestBatch) -> bool:
    """A live (non-tombstoned) crash-injection op in this batch?"""
    return any(op.kind == "crash" and op.seed >= 0 for op in batch.ops)


def batch_wants_hang(batch: RequestBatch) -> bool:
    """A live (non-tombstoned) hang-injection op in this batch?"""
    return any(op.kind == "hang" and op.seed >= 0 for op in batch.ops)


def tombstone_crashes(batch: RequestBatch) -> RequestBatch:
    """Neutralize crash/hang ops so a requeued batch can drain normally."""
    if not any(op.kind in FAULT_OP_KINDS and op.seed >= 0
               for op in batch.ops):
        return batch
    ops = tuple(OpRequest(op.kind, op.index, -1, op.cve)
                if op.kind in FAULT_OP_KINDS else op for op in batch.ops)
    return replace(batch, ops=ops)


def requeue_batch(batch: RequestBatch) -> RequestBatch:
    """Prepare a batch for redelivery after its worker died: tombstone
    the fault op that killed the worker and record the infra strike so
    the respawned worker's circuit breaker starts where the dead one
    left off."""
    return replace(tombstone_crashes(batch),
                   infra_strikes=batch.infra_strikes + 1)


def instance_injector(fault_plan, recorder=None):
    """The worker-local injector for instance-level fault arms (the
    ipt/interp sites); None when the plan arms none of them."""
    if fault_plan is None:
        return None
    sub = fault_plan.for_sites("ipt.", "interp.")
    if not sub.specs:
        return None
    from repro.faults.plan import FaultInjector
    return FaultInjector(sub, recorder=recorder)


@dataclass
class BatchResult:
    """Per-batch accounting, aggregated by the supervisor."""

    tenant: str
    device: str
    seq: int
    worker_id: int
    submitted: int = 0
    completed: int = 0          # ok + detected rounds
    rejected: int = 0           # refused: instance quarantined
    faults: int = 0             # device crashed serving the request
    detections: int = 0
    instance_respawns: int = 0
    quarantined: bool = False   # instance quarantined after this batch
    quarantine_reason: str = ""
    #: ops refused because the enforcement machinery could not vouch for
    #: them (fail-closed / retry-exhausted trace loss)
    trace_gaps: int = 0
    #: ops whose round hit an infrastructure failure (degraded refusals
    #: plus fail-open degraded allows)
    infra_failures: int = 0
    #: ops shed by an open per-tenant circuit breaker
    shed: int = 0
    #: circuit-breaker open transitions during this batch
    circuit_opens: int = 0
    #: exploit ops that executed to completion *without* a detection —
    #: the chaos invariant I1 counts these as escapes
    exploit_escapes: int = 0
    #: exploit ops refused by degradation/shedding (fail-closed working:
    #: the CVE did not run, but it was not detected either)
    exploit_refusals: int = 0
    #: hot spec swaps performed before this batch's first op
    spec_reloads: int = 0
    cycles: int = 0
    io_rounds: int = 0
    #: simulated cycles per completed request (latency percentiles)
    op_cycles: Tuple[int, ...] = ()
    wall_seconds: float = 0.0
    reports: Tuple[CheckReport, ...] = ()
    #: rounds flagged as candidate training traces (anomaly-driven
    #: retraining queue); plain picklable records
    retrain: Tuple[RetrainRecord, ...] = ()


@dataclass
class FleetWorker:
    """Hosts the guarded instances of the tenants assigned to it."""

    worker_id: int
    registry: SpecRegistry
    mode: Mode = Mode.PROTECTION
    backend: str = "compiled"
    max_instance_respawns: int = 1
    degradation: DegradationConfig = DEFAULT_DEGRADATION
    injector: Optional[object] = None
    #: consecutive infra failures that open a tenant's circuit; 0 disables
    circuit_threshold: int = 3
    #: ops shed while open before a half-open probe is let through
    circuit_cooldown: int = 4
    instances: Dict[str, GuardedInstance] = field(default_factory=dict)
    _respawns: Dict[str, int] = field(default_factory=dict)
    _strikes: Dict[str, int] = field(default_factory=dict)
    _circuit_open: Dict[str, bool] = field(default_factory=dict)
    _shed_since_probe: Dict[str, int] = field(default_factory=dict)

    def _build(self, batch: RequestBatch) -> GuardedInstance:
        from repro.workloads.profiles import split_device

        # A batch stamped with a generation digest builds straight at
        # that generation (fresh instances after a respawn must not
        # regress to the train-once spec mid-schedule).
        parts = split_device(batch.device)
        if batch.spec_digest:
            spec = self.registry.spec_by_digest(batch.spec_digest)
        elif len(parts) > 1:
            # Composite tenant: the registry stays strictly per-device;
            # the instance deploys one spec per part.
            spec = {part: self.registry.get(part, batch.qemu_version)
                    for part in parts}
        else:
            spec = self.registry.get(batch.device, batch.qemu_version)
        instance = GuardedInstance(batch.tenant, batch.device,
                                   batch.qemu_version, spec,
                                   mode=self.mode,
                                   backend=self.backend,
                                   degradation=self.degradation,
                                   injector=self.injector)
        instance.spec_epoch = batch.spec_epoch
        instance.spec_digest = batch.spec_digest
        return instance

    def instance_for(self, batch: RequestBatch) -> GuardedInstance:
        instance = self.instances.get(batch.tenant)
        if instance is None:
            instance = self._build(batch)
            self.instances[batch.tenant] = instance
        return instance

    def run_batch(self, batch: RequestBatch) -> BatchResult:
        start = time.perf_counter()
        tenant = batch.tenant
        instance = self.instance_for(batch)
        result = BatchResult(tenant, batch.device, batch.seq,
                             self.worker_id, submitted=len(batch.ops))
        if (batch.spec_epoch > instance.spec_epoch
                and not instance.quarantined):
            # Epoch-based hot reload: the supervisor stamped this batch
            # with a newer generation.  The previous batch finished
            # wholly under the old spec; the swap lands here, before
            # this batch's first op.
            instance.reload_spec(
                self.registry.spec_by_digest(batch.spec_digest),
                batch.spec_epoch, batch.spec_digest)
            result.spec_reloads += 1
        # Seed the breaker from the batch: strikes accrued before the
        # previous worker died must survive the respawn.
        if batch.infra_strikes > self._strikes.get(tenant, 0):
            self._strikes[tenant] = batch.infra_strikes
        if (self.circuit_threshold > 0
                and self._strikes.get(tenant, 0) >= self.circuit_threshold
                and not self._circuit_open.get(tenant, False)):
            self._open_circuit(tenant, result)
        op_cycles = []
        reports = []
        retrain = []
        for op in batch.ops:
            if self._circuit_open.get(tenant, False):
                since = self._shed_since_probe.get(tenant, 0)
                if since < self.circuit_cooldown:
                    self._shed_since_probe[tenant] = since + 1
                    result.shed += 1
                    if op.kind == "exploit":
                        result.exploit_refusals += 1
                    continue
                self._shed_since_probe[tenant] = 0   # half-open probe
            outcome = instance.apply(op)
            result.cycles += outcome.cycles
            result.io_rounds += outcome.io_rounds
            if outcome.report is not None:
                reports.append(outcome.report)
                reason = retrain_reason(outcome.report)
                if reason and op.kind in ("common", "rare"):
                    # Feed the round back to training: the op triple is
                    # enough to replay the exact guest interaction.
                    retrain.append(RetrainRecord(
                        tenant, batch.device, batch.qemu_version,
                        reason, outcome.report.io_key, batch.seq,
                        op.kind, op.index, op.seed))
            infra = (outcome.report is not None
                     and outcome.report.trace_gap)
            if infra:
                result.infra_failures += 1
                strikes = self._strikes.get(tenant, 0) + 1
                self._strikes[tenant] = strikes
                if (self.circuit_threshold > 0
                        and strikes >= self.circuit_threshold
                        and not self._circuit_open.get(tenant, False)):
                    self._open_circuit(tenant, result)
            if outcome.status == "trace_gap":
                result.trace_gaps += 1
                if op.kind == "exploit":
                    result.exploit_refusals += 1
                continue
            if outcome.status == "rejected":
                result.rejected += 1
                if op.kind == "exploit":
                    result.exploit_refusals += 1
                continue
            if outcome.status == "fault":
                result.faults += 1
                instance = self._respawn_or_fence(batch, outcome.detail,
                                                  result)
                continue
            if not infra:
                # A vouched-for round: the tenant's machinery is healthy
                # again, so the strike run ends and an open circuit's
                # successful probe closes it.
                self._strikes[tenant] = 0
                self._circuit_open.pop(tenant, None)
            result.completed += 1
            op_cycles.append(outcome.cycles)
            if outcome.status == "detected":
                result.detections += 1
            elif op.kind == "exploit":
                # The exploit round ran to completion and nothing
                # flagged it: that is an I1 escape, full stop.
                result.exploit_escapes += 1
        result.quarantined = instance.quarantined
        result.quarantine_reason = instance.quarantine_reason
        result.op_cycles = tuple(op_cycles)
        result.reports = tuple(reports)
        result.retrain = tuple(retrain)
        result.wall_seconds = time.perf_counter() - start
        return result

    def _open_circuit(self, tenant: str, result: BatchResult) -> None:
        self._circuit_open[tenant] = True
        self._shed_since_probe[tenant] = 0
        result.circuit_opens += 1

    def _respawn_or_fence(self, batch: RequestBatch, detail: str,
                          result: BatchResult) -> GuardedInstance:
        """An unhandled device fault killed the instance: rebuild it from
        the shared spec (bounded), else quarantine the tenant."""
        spent = self._respawns.get(batch.tenant, 0)
        if spent < self.max_instance_respawns:
            self._respawns[batch.tenant] = spent + 1
            result.instance_respawns += 1
            instance = self._build(batch)
        else:
            instance = self.instances[batch.tenant]
            instance.quarantine(f"fault budget exhausted: {detail}")
        self.instances[batch.tenant] = instance
        return instance


def worker_main(worker_id: int, cache_dir: Optional[str], mode: Mode,
                backend: str, max_instance_respawns: int,
                inbox, outbox, fault_plan=None,
                degradation: Optional[DegradationConfig] = None,
                circuit_threshold: int = 3, circuit_cooldown: int = 4,
                slow_start: float = 0.0) -> None:
    """Multiprocessing entry: drain ("batch", RequestBatch) messages
    until ("stop",).  Specs are loaded from the shared disk cache."""
    if slow_start > 0:
        # worker.slow_start arm: the respawned process takes its time
        # coming up; dispatched batches just wait in the inbox.
        time.sleep(slow_start)
    registry = SpecRegistry(cache_dir=cache_dir)
    worker = FleetWorker(worker_id, registry, mode=mode, backend=backend,
                         max_instance_respawns=max_instance_respawns,
                         degradation=degradation or DEFAULT_DEGRADATION,
                         injector=instance_injector(fault_plan),
                         circuit_threshold=circuit_threshold,
                         circuit_cooldown=circuit_cooldown)
    outbox.put(("ready", worker_id))
    while True:
        message = inbox.get()
        if message[0] == "stop":
            break
        batch: RequestBatch = message[1]
        if batch_wants_crash(batch):
            # Fault-injection hook: die the way a segfaulting QEMU
            # worker would — no goodbye message, exit code and all.
            os._exit(13)
        if batch_wants_hang(batch):
            # Stop responding without dying: only the supervisor's
            # watchdog can get this worker's lane moving again.
            while True:
                time.sleep(3600)
        outbox.put(("result", worker_id, worker.run_batch(batch)))
