"""Fleet workers: each hosts N guarded instances and drains batches.

:class:`FleetWorker` is the execution core, used identically by the
in-process fallback and by :func:`worker_main`, the multiprocessing entry
point.  Instances are built lazily on a tenant's first batch (specs come
from the shared :class:`~repro.fleet.registry.SpecRegistry`, so a worker
process never retrains); a device fault respawns the instance in place
with bounded retries, after which the tenant is fenced off.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.checker import CheckReport, Mode
from repro.fleet.instance import GuardedInstance
from repro.fleet.loadgen import OpRequest, RequestBatch
from repro.fleet.registry import SpecRegistry


def batch_wants_crash(batch: RequestBatch) -> bool:
    """A live (non-tombstoned) crash-injection op in this batch?"""
    return any(op.kind == "crash" and op.seed >= 0 for op in batch.ops)


def tombstone_crashes(batch: RequestBatch) -> RequestBatch:
    """Neutralize crash ops so a requeued batch can drain normally."""
    if not batch_wants_crash(batch):
        return batch
    ops = tuple(OpRequest("crash", op.index, -1, op.cve)
                if op.kind == "crash" else op for op in batch.ops)
    return RequestBatch(batch.tenant, batch.device, batch.qemu_version,
                        batch.seq, ops)


@dataclass
class BatchResult:
    """Per-batch accounting, aggregated by the supervisor."""

    tenant: str
    device: str
    seq: int
    worker_id: int
    submitted: int = 0
    completed: int = 0          # ok + detected rounds
    rejected: int = 0           # refused: instance quarantined
    faults: int = 0             # device crashed serving the request
    detections: int = 0
    instance_respawns: int = 0
    quarantined: bool = False   # instance quarantined after this batch
    quarantine_reason: str = ""
    cycles: int = 0
    io_rounds: int = 0
    #: simulated cycles per completed request (latency percentiles)
    op_cycles: Tuple[int, ...] = ()
    wall_seconds: float = 0.0
    reports: Tuple[CheckReport, ...] = ()


@dataclass
class FleetWorker:
    """Hosts the guarded instances of the tenants assigned to it."""

    worker_id: int
    registry: SpecRegistry
    mode: Mode = Mode.PROTECTION
    backend: str = "compiled"
    max_instance_respawns: int = 1
    instances: Dict[str, GuardedInstance] = field(default_factory=dict)
    _respawns: Dict[str, int] = field(default_factory=dict)

    def _build(self, batch: RequestBatch) -> GuardedInstance:
        spec = self.registry.get(batch.device, batch.qemu_version)
        return GuardedInstance(batch.tenant, batch.device,
                               batch.qemu_version, spec, mode=self.mode,
                               backend=self.backend)

    def instance_for(self, batch: RequestBatch) -> GuardedInstance:
        instance = self.instances.get(batch.tenant)
        if instance is None:
            instance = self._build(batch)
            self.instances[batch.tenant] = instance
        return instance

    def run_batch(self, batch: RequestBatch) -> BatchResult:
        start = time.perf_counter()
        instance = self.instance_for(batch)
        result = BatchResult(batch.tenant, batch.device, batch.seq,
                             self.worker_id, submitted=len(batch.ops))
        op_cycles = []
        reports = []
        for op in batch.ops:
            outcome = instance.apply(op)
            result.cycles += outcome.cycles
            result.io_rounds += outcome.io_rounds
            if outcome.report is not None:
                reports.append(outcome.report)
            if outcome.status == "rejected":
                result.rejected += 1
                continue
            if outcome.status == "fault":
                result.faults += 1
                instance = self._respawn_or_fence(batch, outcome.detail,
                                                  result)
                continue
            result.completed += 1
            op_cycles.append(outcome.cycles)
            if outcome.status == "detected":
                result.detections += 1
        result.quarantined = instance.quarantined
        result.quarantine_reason = instance.quarantine_reason
        result.op_cycles = tuple(op_cycles)
        result.reports = tuple(reports)
        result.wall_seconds = time.perf_counter() - start
        return result

    def _respawn_or_fence(self, batch: RequestBatch, detail: str,
                          result: BatchResult) -> GuardedInstance:
        """An unhandled device fault killed the instance: rebuild it from
        the shared spec (bounded), else quarantine the tenant."""
        spent = self._respawns.get(batch.tenant, 0)
        if spent < self.max_instance_respawns:
            self._respawns[batch.tenant] = spent + 1
            result.instance_respawns += 1
            instance = self._build(batch)
        else:
            instance = self.instances[batch.tenant]
            instance.quarantine(f"fault budget exhausted: {detail}")
        self.instances[batch.tenant] = instance
        return instance


def worker_main(worker_id: int, cache_dir: Optional[str], mode: Mode,
                backend: str, max_instance_respawns: int,
                inbox, outbox) -> None:
    """Multiprocessing entry: drain ("batch", RequestBatch) messages
    until ("stop",).  Specs are loaded from the shared disk cache."""
    registry = SpecRegistry(cache_dir=cache_dir)
    worker = FleetWorker(worker_id, registry, mode=mode, backend=backend,
                         max_instance_respawns=max_instance_respawns)
    outbox.put(("ready", worker_id))
    while True:
        message = inbox.get()
        if message[0] == "stop":
            break
        batch: RequestBatch = message[1]
        if batch_wants_crash(batch):
            # Fault-injection hook: die the way a segfaulting QEMU
            # worker would — no goodbye message, exit code and all.
            os._exit(13)
        outbox.put(("result", worker_id, worker.run_batch(batch)))
