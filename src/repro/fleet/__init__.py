"""repro.fleet: a multi-worker enforcement service for guarded devices.

Scales SEDSpec's one-device/one-VM runtime protection out to fleets:
execution specs are trained once and shared through a content-addressed
:class:`SpecRegistry`; a pool of workers (multiprocessing, with an
in-process fallback) hosts guarded tenant instances and drains batched
I/O with backpressure; a supervisor respawns crashed workers, fences off
quarantined tenants, and aggregates fleet-wide statistics.
"""

from repro.fleet.bench import (
    DEFAULT_DEVICES, DEFAULT_INJECT, DEFAULT_WORKER_COUNTS,
    migration_provenance, run_fleet_bench, run_lifecycle_smoke,
)
from repro.fleet.checkpoint import (
    CHECKPOINT_FORMAT, checkpoint_instance, envelope_bytes,
    restore_instance, seal, verify,
)
from repro.fleet.instance import GuardedInstance, OpOutcome, portable_report
from repro.fleet.loadgen import (
    DEFAULT_QEMU_VERSION, FAULT_OP_KINDS, OpRequest, RequestBatch,
    TenantPlan, build_load, detectable_cves, inject_schedule_faults,
    make_schedule, plan_tenants,
)
from repro.fleet.migration import (
    MigrationCertificate, certify, conservation_violations,
    run_migration_certification, tenant_signatures, verdict_signature,
)
from repro.fleet.registry import (
    CACHE_FORMAT, RegistryStats, SpecGeneration, SpecRegistry,
    program_fingerprint, spec_digest,
)
from repro.fleet.supervisor import (
    FleetConfig, FleetResult, FleetSession, FleetStats, FleetSupervisor,
    ScheduledPolicyReload, ScheduledReload, TenantSummary, percentile,
)
from repro.fleet.worker import (
    BatchResult, FleetWorker, batch_wants_crash, batch_wants_hang,
    instance_injector, requeue_batch, tombstone_crashes, worker_main,
)

__all__ = [
    "DEFAULT_DEVICES", "DEFAULT_INJECT", "DEFAULT_WORKER_COUNTS",
    "migration_provenance", "run_fleet_bench", "run_lifecycle_smoke",
    "CHECKPOINT_FORMAT", "checkpoint_instance", "envelope_bytes",
    "restore_instance", "seal", "verify",
    "GuardedInstance", "OpOutcome", "portable_report",
    "DEFAULT_QEMU_VERSION", "FAULT_OP_KINDS", "OpRequest",
    "RequestBatch", "TenantPlan", "build_load", "detectable_cves",
    "inject_schedule_faults", "make_schedule", "plan_tenants",
    "MigrationCertificate", "certify", "conservation_violations",
    "run_migration_certification", "tenant_signatures",
    "verdict_signature",
    "CACHE_FORMAT", "RegistryStats", "SpecGeneration",
    "SpecRegistry", "program_fingerprint", "spec_digest",
    "FleetConfig", "FleetResult", "FleetSession", "FleetStats",
    "FleetSupervisor", "ScheduledPolicyReload", "ScheduledReload",
    "TenantSummary", "percentile",
    "BatchResult", "FleetWorker", "batch_wants_crash",
    "batch_wants_hang", "instance_injector", "requeue_batch",
    "tombstone_crashes", "worker_main",
]
