"""Fleet benchmark: rounds/sec vs worker count + a security run.

Two parts, both written into ``BENCH_fleet.json``:

* **scaling** — the *same* benign workload served with 1/2/4/8 workers.
  Throughput and latency come from the substrate's deterministic cycle
  model (workers are parallel lanes; makespan = busiest lane), so the
  scaling curve is exact and machine-independent; host wall time is
  recorded alongside for transparency.
* **security** — a mixed run with an injected fraction of CVE PoCs; the
  payload records that exactly the attacked instances were quarantined,
  every benign tenant completed every request, and nothing was lost.
"""

from __future__ import annotations

import datetime
import platform
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.fleet.loadgen import build_load, make_schedule, plan_tenants
from repro.fleet.registry import SpecRegistry
from repro.fleet.supervisor import FleetConfig, FleetResult, FleetSupervisor

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_DEVICES = ("fdc", "sdhci", "scsi", "ehci")
DEFAULT_INJECT = ("CVE-2015-3456", "CVE-2021-3409")


def _config(workers: int, inline: bool, backend: str,
            cache_dir: Optional[str]) -> FleetConfig:
    return FleetConfig(workers=workers, inline=inline, backend=backend,
                       cache_dir=cache_dir)


def _scaling_point(result: FleetResult) -> Dict[str, object]:
    stats = result.stats
    return {
        "workers": stats.workers,
        "requests": stats.requests,
        "io_rounds": stats.io_rounds,
        "rounds_per_sec": round(stats.rounds_per_sec, 1),
        "makespan_s": stats.makespan_seconds,
        "p50_request_ms": round(stats.p50_request_ms, 4),
        "p95_request_ms": round(stats.p95_request_ms, 4),
        "lost": stats.lost,
        "wall_s": round(stats.wall_seconds, 3),
    }


def run_fleet_bench(worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
                    devices: Sequence[str] = DEFAULT_DEVICES,
                    tenants: int = 8, batches: int = 4, ops: int = 4,
                    inject_cves: Sequence[str] = DEFAULT_INJECT,
                    backend: str = "compiled", inline: bool = False,
                    cache_dir: Optional[str] = None,
                    seed: int = 7) -> Dict[str, object]:
    """Run both parts; returns the ``BENCH_fleet.json`` payload."""
    owned_tmp = None
    if cache_dir is None and not inline:
        owned_tmp = tempfile.TemporaryDirectory(prefix="sedspec-fleet-")
        cache_dir = owned_tmp.name
    registry = SpecRegistry(cache_dir=cache_dir)
    try:
        # -- scaling: identical benign schedule per worker count ----------
        plans = plan_tenants(devices, tenants, seed=seed)
        scaling: Dict[str, object] = {}
        for workers in worker_counts:
            schedule = make_schedule(plans, batches, ops, seed=seed)
            supervisor = FleetSupervisor(
                _config(workers, inline, backend, cache_dir), registry)
            scaling[str(workers)] = _scaling_point(
                supervisor.run(schedule, plans))
        base = scaling.get(str(min(worker_counts)), {})
        base_rps = base.get("rounds_per_sec", 0) or 1
        speedups = {w: round(point["rounds_per_sec"] / base_rps, 2)
                    for w, point in scaling.items()}

        # -- security: mixed traffic with injected CVE PoCs ----------------
        sec_plans, sec_schedule = build_load(
            devices, tenants, batches, ops, inject_cves=inject_cves,
            seed=seed + 1)
        supervisor = FleetSupervisor(
            _config(min(2, max(worker_counts)), inline, backend,
                    cache_dir), registry)
        sec = supervisor.run(sec_schedule, sec_plans)
        benign = [s for s in sec.tenants.values() if not s.attacked]
        benign_ok = all(s.completed == s.submitted and s.rejected == 0
                        and not s.quarantined for s in benign)
        security = {
            "tenants": len(sec.tenants),
            "injected_cves": list(inject_cves),
            "attacked": sec.attacked_tenants(),
            "quarantined": sec.quarantined_tenants(),
            "detections": sec.stats.detections,
            "lost": sec.stats.lost,
            "benign_all_completed": benign_ok,
            "exact_quarantine": (sec.quarantined_tenants()
                                 == sec.attacked_tenants()),
            "ok": (benign_ok and sec.stats.lost == 0
                   and sec.stats.detections >= len(inject_cves)
                   and sec.quarantined_tenants()
                   == sec.attacked_tenants()),
        }
        return {
            "generated": datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "machine": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "clock": ("simulated: cycle model over "
                      "workloads.benchtools.CYCLES_PER_SECOND; workers "
                      "are parallel lanes, makespan = busiest lane"),
            "config": {
                "devices": list(devices), "tenants": tenants,
                "batches_per_tenant": batches, "ops_per_batch": ops,
                "backend": backend,
                "pool": "inline" if inline else "multiprocessing",
            },
            "scaling": scaling,
            "speedup_over_min_workers": speedups,
            "security": security,
        }
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
