"""Fleet benchmark: rounds/sec vs worker count + a security run.

Two parts, both written into ``BENCH_fleet.json``:

* **scaling** — the *same* benign workload served with 1/2/4/8 workers.
  Throughput and latency come from the substrate's deterministic cycle
  model (workers are parallel lanes; makespan = busiest lane), so the
  scaling curve is exact and machine-independent; host wall time is
  recorded alongside for transparency.
* **security** — a mixed run with an injected fraction of CVE PoCs; the
  payload records that exactly the attacked instances were quarantined,
  every benign tenant completed every request, and nothing was lost.
"""

from __future__ import annotations

import datetime
import platform
import tempfile
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.fleet.loadgen import (
    OpRequest, build_load, make_schedule, plan_tenants,
)
from repro.fleet.registry import SpecRegistry
from repro.fleet.supervisor import FleetConfig, FleetResult, FleetSupervisor

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_DEVICES = ("fdc", "sdhci", "scsi", "ehci")
DEFAULT_INJECT = ("CVE-2015-3456", "CVE-2021-3409")
#: the five-device seeded-CVE matrix the lifecycle smoke replays
LIFECYCLE_DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi")


def _config(workers: int, inline: bool, backend: str,
            cache_dir: Optional[str]) -> FleetConfig:
    return FleetConfig(workers=workers, inline=inline, backend=backend,
                       cache_dir=cache_dir)


def _scaling_point(result: FleetResult) -> Dict[str, object]:
    stats = result.stats
    return {
        "workers": stats.workers,
        "requests": stats.requests,
        "io_rounds": stats.io_rounds,
        "rounds_per_sec": round(stats.rounds_per_sec, 1),
        "makespan_s": stats.makespan_seconds,
        "p50_request_ms": round(stats.p50_request_ms, 4),
        "p95_request_ms": round(stats.p95_request_ms, 4),
        "p99_request_ms": round(stats.p99_request_ms, 4),
        "lost": stats.lost,
        "wall_s": round(stats.wall_seconds, 3),
    }


def run_fleet_bench(worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
                    devices: Sequence[str] = DEFAULT_DEVICES,
                    tenants: int = 8, batches: int = 4, ops: int = 4,
                    inject_cves: Sequence[str] = DEFAULT_INJECT,
                    backend: str = "compiled", inline: bool = False,
                    cache_dir: Optional[str] = None,
                    seed: int = 7,
                    migration: Optional[Dict[str, object]] = None,
                    ) -> Dict[str, object]:
    """Run both parts; returns the ``BENCH_fleet.json`` payload.

    *migration*, when given, is a live-migration certification summary
    (see :func:`migration_provenance`) merged into the payload so a
    benchmark artifact records whether the numbers were produced by a
    build whose checkpoint/restore path certifies."""
    owned_tmp = None
    if cache_dir is None and not inline:
        owned_tmp = tempfile.TemporaryDirectory(prefix="sedspec-fleet-")
        cache_dir = owned_tmp.name
    registry = SpecRegistry(cache_dir=cache_dir)
    try:
        # -- scaling: identical benign schedule per worker count ----------
        plans = plan_tenants(devices, tenants, seed=seed)
        # One-time spec training/loading happens *before* the loop and is
        # reported as warmup: folding it into the first configuration's
        # wall_s made the 1-worker row look ~10s slow against like-for-
        # like 2-8 worker rows served from the primed registry.
        warm_start = time.perf_counter()
        registry.prime(sorted({(p.device, p.qemu_version)
                               for p in plans}))
        warmup_s = time.perf_counter() - warm_start
        scaling: Dict[str, object] = {}
        for workers in worker_counts:
            schedule = make_schedule(plans, batches, ops, seed=seed)
            supervisor = FleetSupervisor(
                _config(workers, inline, backend, cache_dir), registry)
            scaling[str(workers)] = _scaling_point(
                supervisor.run(schedule, plans))
        base = scaling.get(str(min(worker_counts)), {})
        base_rps = base.get("rounds_per_sec", 0) or 1
        speedups = {w: round(point["rounds_per_sec"] / base_rps, 2)
                    for w, point in scaling.items()}

        # -- security: mixed traffic with injected CVE PoCs ----------------
        sec_plans, sec_schedule = build_load(
            devices, tenants, batches, ops, inject_cves=inject_cves,
            seed=seed + 1)
        supervisor = FleetSupervisor(
            _config(min(2, max(worker_counts)), inline, backend,
                    cache_dir), registry)
        sec = supervisor.run(sec_schedule, sec_plans)
        benign = [s for s in sec.tenants.values() if not s.attacked]
        benign_ok = all(s.completed == s.submitted and s.rejected == 0
                        and not s.quarantined for s in benign)
        security = {
            "tenants": len(sec.tenants),
            "injected_cves": list(inject_cves),
            "attacked": sec.attacked_tenants(),
            "quarantined": sec.quarantined_tenants(),
            "detections": sec.stats.detections,
            "lost": sec.stats.lost,
            "benign_all_completed": benign_ok,
            "exact_quarantine": (sec.quarantined_tenants()
                                 == sec.attacked_tenants()),
            "ok": (benign_ok and sec.stats.lost == 0
                   and sec.stats.detections >= len(inject_cves)
                   and sec.quarantined_tenants()
                   == sec.attacked_tenants()),
        }
        return {
            "generated": datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "machine": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "clock": ("simulated: cycle model over "
                      "workloads.benchtools.CYCLES_PER_SECOND; workers "
                      "are parallel lanes, makespan = busiest lane"),
            "config": {
                "devices": list(devices), "tenants": tenants,
                "batches_per_tenant": batches, "ops_per_batch": ops,
                "backend": backend,
                "pool": "inline" if inline else "multiprocessing",
            },
            "warmup_s": round(warmup_s, 3),
            "scaling": scaling,
            "speedup_over_min_workers": speedups,
            "security": security,
            "corpus": _corpus_provenance(),
            **({"migration": migration} if migration else {}),
        }
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()


def migration_provenance(certificates) -> Dict[str, object]:
    """Fold per-backend :class:`MigrationCertificate` results into the
    provenance block ``run_fleet_bench`` embeds: migration counts, the
    certified/failed verdict per backend, and any violations — so
    BENCH_fleet.json names the exact migration surface it was produced
    under."""
    backends: Dict[str, object] = {}
    for cert in certificates:
        backends[cert.backend] = {
            "certified": cert.ok,
            "tenants": cert.tenants,
            "migrations": cert.migrations,
            "mismatched": list(cert.mismatched),
            "violations": list(cert.violations),
            "missing": list(cert.missing),
        }
    return {
        "backends": backends,
        "total_migrations": sum(b["migrations"]
                                for b in backends.values()),
        "all_certified": all(b["certified"] for b in backends.values()),
    }


def _corpus_provenance() -> Dict[str, object]:
    """Counts of the synthetic vulnerability corpus at its pinned seed —
    recorded alongside the fleet numbers so a benchmark payload names
    the exact attack surface (devices x families x variants) the
    security section's injectable ids were drawn from."""
    from repro.exploits.corpus import (
        DEFAULT_SEED, corpus_summary, generate_corpus,
    )

    summary = corpus_summary(generate_corpus())
    return {
        "seed": DEFAULT_SEED,
        "total_pocs": summary["total"],
        "by_device": summary["by_device"],
        "by_family": summary["by_family"],
    }


def _seeded_exploit(device: str):
    """The device's seeded CVE: its first detectable PoC."""
    from repro.exploits import EXPLOITS
    for exploit in EXPLOITS:
        if exploit.device == device and not exploit.expected_miss:
            return exploit
    raise ValueError(f"no detectable exploit seeded for {device!r}")


def _rare_splice(device: str, batch_index: int, seed: int) -> OpRequest:
    """The rare op spliced into *device*'s post-reload batches.

    One deterministic (index, seed) per (device, batch) — the same
    triples the rare candidate was trained on, so the promoted spec
    provably covers the spliced traffic while the base spec does not.
    """
    from repro.workloads.profiles import PROFILES
    rare = PROFILES[device].rare_ops
    return OpRequest("rare", batch_index % len(rare),
                     seed * 1000 + batch_index)


def _stats_parity(inline_stats, pool_stats) -> Dict[str, object]:
    """Compare every schedule-determined stat between the two paths."""
    fields = ("requests", "completed", "rejected", "faults", "lost",
              "detections", "quarantined_instances", "worker_respawns",
              "instance_respawns", "trace_gaps", "infra_failures",
              "shed", "circuit_opens", "watchdog_kills", "spec_reloads",
              "retrain_candidates", "latency_samples", "io_rounds",
              "total_cycles", "makespan_cycles", "p50_request_cycles",
              "p95_request_cycles", "p99_request_cycles")
    mismatched = [name for name in fields
                  if getattr(inline_stats, name)
                  != getattr(pool_stats, name)]
    return {"fields": list(fields), "mismatched": mismatched,
            "ok": not mismatched}


def run_lifecycle_smoke(devices: Sequence[str] = LIFECYCLE_DEVICES,
                        tenants: int = 6, attacked: int = 5,
                        batches: int = 4, ops: int = 4, workers: int = 2,
                        backend: str = "compiled",
                        cache_dir: Optional[str] = None,
                        seed: int = 23) -> Dict[str, object]:
    """End-to-end spec lifecycle: train → promote → hot-reload → attack.

    Per device: the base generation is bootstrapped, two partial
    candidates are trained on *disjoint* workload slices (one replays
    rare-op retrain records — the traces the enforcement fleet would
    have queued — and one trains on common ops only), and
    :func:`~repro.spec.lifecycle.promote` merges them through the
    coverage and differential-replay gates with ``activate=False``: the
    generation is published but the fleet still boots on base.

    Then a mixed fleet (``attacked`` seeded-CVE tenants plus benign
    tenants per device) runs the same schedule twice — in-process and
    multiprocessing — with a mid-run :meth:`FleetSupervisor.reload_spec`
    swapping every instance to the promoted generation at the halfway
    batch boundary.  Post-reload batches carry rare ops the base spec
    would have flagged and the PoCs land in the *last* batch, so the
    run demonstrates all three lifecycle claims at once: the reload
    loses nothing, legitimizes the rare traffic, and every seeded CVE
    is still detected post-reload.  On success the promoted generations
    are activated (the staged rollout completes).
    """
    from repro.core import build_execution_spec
    from repro.spec.lifecycle import (
        PromotionConfig, RetrainRecord, candidate_from_records, promote,
    )
    from repro.workloads.profiles import PROFILES

    if batches < 2 or ops < 2:
        raise ValueError("lifecycle smoke needs >= 2 batches and ops")
    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="sedspec-life-")
        cache_dir = owned_tmp.name
    registry = SpecRegistry(cache_dir=cache_dir)
    reload_batch = batches // 2
    try:
        # -- promotion: two disjoint partial candidates per device ------
        promotions: Dict[str, object] = {}
        promoted_digests: Dict[str, str] = {}
        versions: Dict[str, str] = {}
        all_plans: List[object] = []
        for i, device in enumerate(devices):
            exploit = _seeded_exploit(device)
            versions[device] = exploit.qemu_version
            registry.ensure_base_generation(device, exploit.qemu_version)
            # Candidate A: replay the rare rounds the fleet will see
            # post-reload, shaped as queued retrain records.
            records = []
            for b in range(reload_batch, batches):
                op = _rare_splice(device, b, seed)
                records.append(RetrainRecord(
                    tenant="smoke", device=device,
                    qemu_version=exploit.qemu_version,
                    reason="near-miss", io_key=f"smoke-{b}", seq=b,
                    kind="rare", index=op.index, seed=op.seed))
            cand_rare = candidate_from_records(
                device, exploit.qemu_version, records, backend=backend)

            # Candidate B: common ops only, disjoint from the rare slice.
            prof = PROFILES[device]

            def workload(vm, _device, prof=prof, salt=i):
                import random as random_mod
                rng = random_mod.Random(seed * 7 + salt)
                driver = prof.make_driver(vm)
                prof.prepare(vm, driver)
                for _ in range(12):
                    rng.choice(prof.common_ops)(vm, driver, rng)

            cand_common = build_execution_spec(
                lambda prof=prof, qv=exploit.qemu_version:
                prof.make_vm(qv, backend=backend), workload).spec

            report = promote(
                registry, device, exploit.qemu_version,
                [cand_rare, cand_common],
                PromotionConfig(benign_rounds=20, backend=backend,
                                activate=False),
                provenance="lifecycle-smoke")
            promotions[device] = {
                "promoted": report.promoted, "reason": report.reason,
                "generation": report.generation,
                "digest": report.digest,
                "coverage_gain": round(report.coverage_gain, 4),
                "edge_gain": report.edge_gain,
                "new_false_positives": report.new_false_positives,
                "removed_false_positives":
                    report.removed_false_positives,
                "cve_results": {c: list(pair) for c, pair
                                in report.cve_results.items()},
            }
            if not report.promoted:
                continue
            promoted_digests[device] = report.digest
            all_plans.extend(plan_tenants(
                [device], tenants,
                inject_cves=[exploit.cve] * attacked,
                qemu_version=exploit.qemu_version, seed=seed + i))
        all_promoted = len(promoted_digests) == len(devices)

        # -- one schedule: PoCs in the last batch, rare ops post-reload -
        schedule = make_schedule(all_plans, batches, ops, seed=seed,
                                 attack_batch=batches - 1)
        n_tenants = len(all_plans)
        spliced = []
        for batch in schedule:
            b = batch.seq // n_tenants
            if b < reload_batch:
                spliced.append(batch)
                continue
            batch_ops = list(batch.ops)
            # Slot 1: slot 0 may carry the exploit op, which must stay.
            batch_ops[1] = _rare_splice(batch.device, b, seed)
            spliced.append(replace(batch, ops=tuple(batch_ops)))
        schedule = spliced
        reload_at = reload_batch * n_tenants

        def run_fleet(inline: bool) -> FleetResult:
            supervisor = FleetSupervisor(
                _config(workers, inline, backend, cache_dir), registry)
            for device, digest in sorted(promoted_digests.items()):
                supervisor.reload_spec(device, digest, at_seq=reload_at)
            return supervisor.run(schedule, all_plans)

        inline_result = run_fleet(inline=True)
        pool_result = run_fleet(inline=False)
        parity = _stats_parity(inline_result.stats, pool_result.stats)
        parity["retrain_equal"] = (inline_result.retrain
                                   == pool_result.retrain)

        stats = inline_result.stats
        benign = [s for s in inline_result.tenants.values()
                  if not s.attacked]
        benign_ok = all(s.completed == s.submitted and s.rejected == 0
                        and not s.quarantined for s in benign)
        expected_detections = sum(
            1 for p in all_plans if p.attacked)
        fleet = {
            "tenants": n_tenants,
            "reload_at_seq": reload_at,
            "spec_reloads": stats.spec_reloads,
            "detections": stats.detections,
            "expected_detections": expected_detections,
            "lost": stats.lost,
            "duplicate_results": stats.duplicate_results,
            "retrain_candidates": stats.retrain_candidates,
            "benign_all_completed": benign_ok,
            "exact_quarantine": (inline_result.quarantined_tenants()
                                 == inline_result.attacked_tenants()),
            "parity": parity,
        }
        ok = (all_promoted and benign_ok
              and parity["ok"] and parity["retrain_equal"]
              and stats.detections == expected_detections
              and stats.lost == 0 and stats.duplicate_results == 0
              and stats.spec_reloads == n_tenants
              and fleet["exact_quarantine"])
        if ok:
            # The staged rollout completes: the generation the fleet
            # verified under live traffic becomes the default.
            for device, digest in promoted_digests.items():
                registry.activate(device, versions[device], digest)
        return {
            "generated": datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "config": {
                "devices": list(devices), "tenants_per_device": tenants,
                "attacked_per_device": attacked,
                "batches_per_tenant": batches, "ops_per_batch": ops,
                "workers": workers, "backend": backend,
            },
            "promotions": promotions,
            "all_promoted": all_promoted,
            "fleet": fleet,
            "ok": ok,
        }
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
