"""Fleet supervisor: worker pool, backpressure, fault tolerance, stats.

The supervisor owns the enforcement service's control plane:

* **placement** — tenants are pinned to workers (instances are stateful),
  assigned round-robin in order of first appearance;
* **backpressure** — at most ``queue_depth`` batches are outstanding per
  worker; dispatch is credit-based, so a slow worker never accumulates an
  unbounded queue;
* **fault tolerance** — a dead worker process is respawned (bounded by
  ``max_worker_respawns``) with a *fresh* inbox, and every batch it had
  not acknowledged is requeued (crash ops tombstoned), so nothing is
  silently dropped; once the respawn budget is spent the worker's
  remaining requests are counted ``lost`` rather than hidden;
* **quarantine bookkeeping** — SEDSpec detections recorded per tenant
  with their :class:`CheckReport`s while other tenants keep being served.

Throughput and latency are reported on the substrate's **simulated
clock**: every request accrues deterministic cycles (vmexit + device +
checker), workers are parallel lanes, and the fleet makespan is the
busiest worker's cycle count — so scaling numbers are exact and
machine-independent, while wall-clock time is recorded alongside.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.checker import CheckReport, DEFAULT_DEGRADATION, \
    DegradationConfig, Mode
from repro.errors import FleetError
from repro.policy.model import PolicySet
from repro.fleet.loadgen import FAULT_OP_KINDS, RequestBatch, TenantPlan
from repro.spec.lifecycle import RetrainQueue, RetrainRecord
from repro.fleet.registry import SpecRegistry
from repro.fleet.worker import (
    BatchResult, FleetWorker, batch_wants_crash, batch_wants_hang,
    instance_injector, requeue_batch, worker_main,
)
from repro.workloads.benchtools import CYCLES_PER_SECOND


@dataclass
class FleetConfig:
    workers: int = 2
    inline: bool = False            # in-process fallback (tests, 1-cpu)
    queue_depth: int = 4            # outstanding batches per worker
    mode: Mode = Mode.PROTECTION
    backend: str = "compiled"
    #: credit-batch size per instance: strict-key rounds execute on
    #: credit and are vetted in one batched checker invocation per
    #: flush (0 preserves the per-round discipline bit-for-bit)
    batch_rounds: int = 0
    cache_dir: Optional[str] = None
    max_worker_respawns: int = 2
    max_instance_respawns: int = 1
    train_seed: int = 7
    train_repeats: int = 2
    #: no result and no worker death for this long -> supervisor error
    stall_timeout: float = 120.0
    #: a dispatched batch outstanding longer than this gets its worker
    #: killed (hung process); 0 disables the watchdog
    watchdog_timeout: float = 30.0
    #: deterministic (jitter-free) exponential backoff on worker respawn:
    #: the n-th respawn of a worker waits min(cap, base * 2**(n-1))
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: per-tenant circuit breaker: consecutive infra failures that open
    #: the circuit (0 disables) and ops shed before a half-open probe
    circuit_threshold: int = 3
    circuit_cooldown: int = 4
    #: what an enforcement-machinery failure means for the affected round
    degradation: Optional[DegradationConfig] = None
    #: armed fault plan shipped to every worker (chaos campaigns)
    fault_plan: Optional[object] = None
    #: declarative per-tenant resilience policies; None preserves the
    #: legacy knobs above verbatim (workers synthesize an equivalent
    #: default policy)
    policies: Optional[PolicySet] = None


@dataclass(frozen=True)
class ScheduledReload:
    """One hot spec reload: from batch ``at_seq`` on, every batch of
    *device* (optionally narrowed to one qemu_version) runs under the
    generation named by *digest*."""

    device: str
    digest: str
    at_seq: int = 0
    qemu_version: Optional[str] = None


@dataclass(frozen=True)
class ScheduledPolicyReload:
    """One fleet-wide tenant-policy hot reload: from batch ``at_seq``
    on, every batch is stamped with the policy set named by *digest*."""

    digest: str
    at_seq: int = 0


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class FleetStats:
    workers: int = 0
    requests: int = 0
    completed: int = 0
    rejected: int = 0
    faults: int = 0
    lost: int = 0
    detections: int = 0
    quarantined_instances: int = 0
    worker_respawns: int = 0
    instance_respawns: int = 0
    #: late results for a seq already counted (requeue race), dropped
    duplicate_results: int = 0
    #: ops refused fail-closed because the machinery lost their trace
    trace_gaps: int = 0
    #: ops whose round hit an infrastructure failure (includes fail-open
    #: degraded allows, so may exceed ``trace_gaps``)
    infra_failures: int = 0
    #: ops shed by an open per-tenant circuit breaker
    shed: int = 0
    #: circuit-breaker open transitions across the fleet
    circuit_opens: int = 0
    #: hung worker processes killed by the supervisor watchdog
    watchdog_kills: int = 0
    #: per-instance hot spec swaps performed (epoch-based reloads)
    spec_reloads: int = 0
    #: per-tenant policy hot swaps performed (epoch-based, like specs)
    policy_reloads: int = 0
    #: graduated-ladder responses fired across the fleet
    policy_throttles: int = 0
    policy_restores: int = 0
    policy_fences: int = 0
    #: tenants infrastructure-fenced by ladder rung 3 (never security)
    fenced_tenants: int = 0
    #: live tenant migrations (checkpoint/transfer/restore) completed
    migrations: int = 0
    #: rounds enqueued as candidate training traces (trace gaps,
    #: incomplete walks, near-miss control-flow anomalies)
    retrain_candidates: int = 0
    #: op_cycles samples feeding the latency percentiles; invariant:
    #: equals ``completed`` (each completed request is timed exactly once)
    latency_samples: int = 0
    io_rounds: int = 0
    total_cycles: int = 0
    makespan_cycles: int = 0
    p50_request_cycles: float = 0.0
    p95_request_cycles: float = 0.0
    p99_request_cycles: float = 0.0
    #: wall-clock queue wait (enqueue -> result) percentiles; requeued
    #: batches keep their original enqueue timestamp, so a respawn shows
    #: up as latency instead of silently resetting the clock
    queue_wait_samples: int = 0
    p50_queue_wait_s: float = 0.0
    p95_queue_wait_s: float = 0.0
    p99_queue_wait_s: float = 0.0
    wall_seconds: float = 0.0

    @property
    def makespan_seconds(self) -> float:
        """Simulated service time: the busiest worker lane's cycles."""
        return self.makespan_cycles / CYCLES_PER_SECOND

    @property
    def rounds_per_sec(self) -> float:
        """Aggregate I/O rounds per simulated second across the fleet."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.io_rounds / self.makespan_seconds

    @property
    def p50_request_ms(self) -> float:
        return 1e3 * self.p50_request_cycles / CYCLES_PER_SECOND

    @property
    def p95_request_ms(self) -> float:
        return 1e3 * self.p95_request_cycles / CYCLES_PER_SECOND

    @property
    def p99_request_ms(self) -> float:
        return 1e3 * self.p99_request_cycles / CYCLES_PER_SECOND

    def describe(self) -> str:
        return (f"fleet: {self.workers} workers, {self.requests} requests "
                f"({self.completed} completed, {self.rejected} rejected, "
                f"{self.faults} faults, {self.lost} lost)\n"
                f"  detections={self.detections} "
                f"quarantined={self.quarantined_instances} "
                f"respawns={self.worker_respawns}w/"
                f"{self.instance_respawns}i\n"
                f"  degradation: trace_gaps={self.trace_gaps} "
                f"infra_failures={self.infra_failures} shed={self.shed} "
                f"circuit_opens={self.circuit_opens} "
                f"watchdog_kills={self.watchdog_kills}\n"
                f"  lifecycle: spec_reloads={self.spec_reloads} "
                f"retrain_candidates={self.retrain_candidates}\n"
                f"  policy: reloads={self.policy_reloads} "
                f"throttles={self.policy_throttles} "
                f"restores={self.policy_restores} "
                f"fences={self.policy_fences} "
                f"migrations={self.migrations}\n"
                f"  throughput={self.rounds_per_sec:,.0f} rounds/s "
                f"(simulated) latency p50={self.p50_request_ms:.3f}ms "
                f"p95={self.p95_request_ms:.3f}ms "
                f"p99={self.p99_request_ms:.3f}ms "
                f"queue_wait p95={self.p95_queue_wait_s * 1e3:.1f}ms "
                f"wall={self.wall_seconds:.2f}s")


@dataclass
class TenantSummary:
    tenant: str
    device: str
    attacked: bool = False
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    faults: int = 0
    detections: int = 0
    trace_gaps: int = 0
    infra_failures: int = 0
    shed: int = 0
    #: exploit ops that ran to completion undetected (chaos invariant I1)
    exploit_escapes: int = 0
    #: exploit ops refused by degradation or load shedding
    exploit_refusals: int = 0
    quarantined: bool = False
    quarantine_reason: str = ""
    #: resolved tenant-policy id this tenant last ran under
    policy_id: str = ""
    #: infrastructure-fenced by ladder rung 3 (distinct from quarantine)
    fenced: bool = False


@dataclass
class FleetResult:
    stats: FleetStats
    tenants: Dict[str, TenantSummary]
    #: every recorded CheckReport, tagged with its tenant
    reports: List[Tuple[str, CheckReport]] = field(default_factory=list)
    worker_busy_cycles: Dict[int, int] = field(default_factory=dict)
    #: candidate training traces the run produced (also enqueued on the
    #: supervisor's persistent retrain queue)
    retrain: List[RetrainRecord] = field(default_factory=list)

    def quarantined_tenants(self) -> List[str]:
        return sorted(t for t, s in self.tenants.items() if s.quarantined)

    def attacked_tenants(self) -> List[str]:
        return sorted(t for t, s in self.tenants.items() if s.attacked)


class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.inbox = None
        self.outstanding: Dict[int, RequestBatch] = {}
        self.dispatched_at: Dict[int, float] = {}   # seq -> monotonic ts
        self.respawns = 0
        self.dead = False           # respawn budget exhausted
        #: backoff deadline: respawn is due but not started (jitter-free
        #: exponential delay); no dispatch happens while this is set
        self.respawn_at: Optional[float] = None


class FleetSupervisor:
    def __init__(self, config: Optional[FleetConfig] = None,
                 registry: Optional[SpecRegistry] = None,
                 recorder=None):
        self.config = config or FleetConfig()
        if self.config.workers < 1:
            raise FleetError("a fleet needs at least one worker")
        self.registry = registry or SpecRegistry(
            cache_dir=self.config.cache_dir,
            seed=self.config.train_seed,
            repeats=self.config.train_repeats)
        self._duplicates = 0
        self._watchdog_kills = 0
        #: seq -> monotonic ts of *first* dispatch; a requeued batch keeps
        #: its original entry, so respawn delay shows up as queue latency
        self._enqueue_ts: Dict[int, float] = {}
        self._queue_waits: List[float] = []
        #: swappable monotonic clock (tests substitute a fake)
        self._clock = time.monotonic
        self._recorder = recorder
        self._telemetry = None
        if recorder is not None:
            from repro.telemetry.instruments import FleetTelemetry
            self._telemetry = FleetTelemetry(recorder)
        self._reloads: List[ScheduledReload] = []
        self._policy_reloads: List[ScheduledPolicyReload] = []
        self._migrations = 0
        #: configured policy set, published content-addressed so pool
        #: worker processes load the exact same document by digest
        self._policy_digest = ""
        if self.config.policies is not None:
            self._policy_digest = self.registry.policies.put(
                self.config.policies)
        queue_path = None
        if self.config.cache_dir is not None:
            os.makedirs(self.config.cache_dir, exist_ok=True)
            queue_path = os.path.join(self.config.cache_dir,
                                      "retrain-queue.jsonl")
        #: anomaly-driven retraining queue; persistent when the fleet
        #: has a cache_dir, so the loop survives supervisor restarts
        self.retrain_queue = RetrainQueue(path=queue_path)

    # -- public entry -------------------------------------------------------

    def reload_spec(self, device: str, digest: str, at_seq: int = 0,
                    qemu_version: Optional[str] = None) -> None:
        """Schedule a fleet-wide hot reload for the next ``run``.

        From batch ``at_seq`` on, every batch of *device* is stamped
        with the generation named by *digest* (which must already be
        published in the registry — validated here, eagerly).  The swap
        itself happens worker-side, per instance, between batches:
        in-flight rounds always finish under the spec they started
        under.  Stamping the schedule up front — rather than racing a
        control message against dispatch — is what keeps the inline and
        pool paths byte-identical under a shared fault plan.
        """
        self.registry.spec_by_digest(digest)    # unknown digest: raise
        self._reloads.append(ScheduledReload(device, digest, at_seq,
                                             qemu_version))

    def reload_policy(self, policies, at_seq: int = 0) -> str:
        """Schedule a fleet-wide tenant-policy hot reload.

        *policies* is a :class:`PolicySet` or a raw policy-set document
        (dict), which is validated **here, eagerly** — a malformed
        document raises :class:`~repro.errors.PolicyError` before
        anything is scheduled, so it never disturbs the running fleet.
        From batch ``at_seq`` on, every batch is stamped with the new
        generation; the swap happens worker-side per tenant, between
        batches, exactly like spec reloads — in-flight batches finish
        under the old policy and the inline/pool paths stay
        byte-identical.  Returns the content digest of the document.
        """
        if not isinstance(policies, PolicySet):
            policies = PolicySet.from_obj(policies)
        digest = self.registry.policies.put(policies)
        self._policy_reloads.append(ScheduledPolicyReload(digest, at_seq))
        return digest

    def _stamp_one(self, batch: RequestBatch) -> RequestBatch:
        """Stamp one batch with the spec and policy epochs it runs
        under."""
        epoch, digest = 0, ""
        for reload_ in self._reloads:
            if (batch.device == reload_.device
                    and (reload_.qemu_version is None
                         or reload_.qemu_version == batch.qemu_version)
                    and batch.seq >= reload_.at_seq):
                epoch += 1
                digest = reload_.digest
        if epoch:
            batch = replace(batch, spec_epoch=epoch, spec_digest=digest)
        pepoch, pdigest = 0, ""
        for preload in self._policy_reloads:
            if batch.seq >= preload.at_seq:
                pepoch += 1
                pdigest = preload.digest
        if pepoch:
            batch = replace(batch, policy_epoch=pepoch,
                            policy_digest=pdigest)
        return batch

    def _stamp_reloads(self, schedule: Sequence[RequestBatch]
                       ) -> List[RequestBatch]:
        """Stamp every batch with the spec epoch/digest it runs under."""
        if not self._reloads and not self._policy_reloads:
            return list(schedule)
        return [self._stamp_one(batch) for batch in schedule]

    def session(self) -> "FleetSession":
        """Open a streaming session: batches are submitted one at a time
        (the gateway's dispatch loop) instead of as a prebuilt schedule,
        with ``run()``-identical placement, fault-tolerance, reload, and
        aggregation semantics."""
        return FleetSession(self)

    def run(self, schedule: Sequence[RequestBatch],
            plans: Sequence[TenantPlan] = ()) -> FleetResult:
        """Serve the whole schedule; returns aggregated fleet results."""
        start = time.perf_counter()
        self.registry.prime(sorted({(b.device, b.qemu_version)
                                    for b in schedule}))
        schedule = self._stamp_reloads(schedule)
        pending = self._assign(schedule)
        self._duplicates = 0
        self._watchdog_kills = 0
        self._migrations = 0
        self._enqueue_ts = {}
        self._queue_waits = []
        if self.config.inline:
            results, lost, respawns = self._run_inline(pending)
        else:
            results, lost, respawns = self._run_pool(pending)
        wall = time.perf_counter() - start
        return self._aggregate(schedule, plans, results, lost, respawns,
                               wall)

    # -- placement ----------------------------------------------------------

    def _assign(self, schedule: Sequence[RequestBatch]
                ) -> Dict[int, Deque[RequestBatch]]:
        """Pin each tenant to a worker; preserve per-tenant batch order."""
        tenant_worker: Dict[str, int] = {}
        pending: Dict[int, Deque[RequestBatch]] = {
            w: deque() for w in range(self.config.workers)}
        for batch in schedule:
            worker = tenant_worker.setdefault(
                batch.tenant, len(tenant_worker) % self.config.workers)
            pending[worker].append(batch)
        return pending

    # -- in-process fallback -------------------------------------------------

    def _make_worker(self, worker_id: int) -> FleetWorker:
        config = self.config
        return FleetWorker(worker_id, self.registry,
                           mode=config.mode,
                           backend=config.backend,
                           batch_rounds=config.batch_rounds,
                           max_instance_respawns=config
                           .max_instance_respawns,
                           degradation=(config.degradation
                                        or DEFAULT_DEGRADATION),
                           injector=instance_injector(
                               config.fault_plan,
                               recorder=self._recorder),
                           circuit_threshold=config.circuit_threshold,
                           circuit_cooldown=config.circuit_cooldown,
                           policies=config.policies)

    def _run_inline(self, pending: Dict[int, Deque[RequestBatch]]
                    ) -> Tuple[List[BatchResult], int, int]:
        """Single-process execution with identical semantics: crash ops
        still cost the worker its in-memory instances and a respawn, and
        hang ops still count a watchdog kill."""
        results: List[BatchResult] = []
        lost = 0
        respawns = 0
        for worker_id, batches in pending.items():
            worker = self._make_worker(worker_id)
            budget = self.config.max_worker_respawns
            while batches:
                batch = batches[0]
                self._enqueue_ts.setdefault(batch.seq, self._clock())
                crash = batch_wants_crash(batch)
                hang = batch_wants_hang(batch)
                if crash or hang:
                    if budget <= 0:
                        lost += sum(len(b.ops) for b in batches)
                        batches.clear()
                        break
                    budget -= 1
                    respawns += 1
                    if hang:
                        self._watchdog_kills += 1
                    worker = self._make_worker(worker_id)
                    batches[0] = requeue_batch(batch)
                    continue
                batch = batches.popleft()
                results.append(worker.run_batch(batch))
                start = self._enqueue_ts.pop(batch.seq, None)
                if start is not None:
                    self._queue_waits.append(self._clock() - start)
        return results, lost, respawns

    # -- multiprocessing pool -----------------------------------------------

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0])

    def _slow_start(self, handle: _WorkerHandle) -> float:
        """The ``worker.slow_start`` arm: seconds the spawned process
        dawdles before serving (keyed on worker id + respawn count)."""
        plan = self.config.fault_plan
        if plan is None or not plan.has_site("worker.slow_start"):
            return 0.0
        from repro.faults.plan import FaultInjector
        injector = FaultInjector(plan.for_sites("worker.slow_start"))
        spec = injector.decide("worker.slow_start", handle.respawns,
                               str(handle.worker_id))
        return 0.05 * spec.arg if spec is not None else 0.0

    def _spawn(self, ctx, handle: _WorkerHandle, outbox) -> None:
        config = self.config
        handle.inbox = ctx.Queue()
        handle.process = ctx.Process(
            target=worker_main,
            args=(handle.worker_id, self.registry.cache_dir,
                  config.mode, config.backend,
                  config.max_instance_respawns,
                  handle.inbox, outbox, config.fault_plan,
                  config.degradation or DEFAULT_DEGRADATION,
                  config.circuit_threshold, config.circuit_cooldown,
                  self._slow_start(handle), self._policy_digest,
                  config.batch_rounds),
            daemon=True)
        handle.process.start()

    def _run_pool(self, pending: Dict[int, Deque[RequestBatch]]
                  ) -> Tuple[List[BatchResult], int, int]:
        if self.registry.cache_dir is None:
            raise FleetError(
                "worker processes share specs via the disk cache; "
                "set FleetConfig.cache_dir (or use inline=True)")
        ctx = self._context()
        outbox = ctx.Queue()
        handles = {w: _WorkerHandle(w) for w in pending}
        for handle in handles.values():
            self._spawn(ctx, handle, outbox)
        results: List[BatchResult] = []
        done: set = set()
        lost = 0
        respawns = 0
        last_progress = time.monotonic()
        try:
            while any(not h.dead and (pending[w] or h.outstanding)
                      for w, h in handles.items()):
                self._dispatch(handles, pending)
                if self._collect(outbox, handles, results, done,
                                 timeout=0.05):
                    last_progress = time.monotonic()
                self._watchdog(handles)
                if self._revive(ctx, handles, outbox):
                    last_progress = time.monotonic()
                died = self._reap(ctx, outbox, handles, pending, results,
                                  done)
                if died:
                    respawns += died[0]
                    lost += died[1]
                    last_progress = time.monotonic()
                if (time.monotonic() - last_progress
                        > self.config.stall_timeout):
                    raise FleetError("fleet stalled: no results and no "
                                     "worker exits within stall_timeout")
        finally:
            self._shutdown(handles)
        return results, lost, respawns

    def _dispatch(self, handles: Dict[int, _WorkerHandle],
                  pending: Dict[int, Deque[RequestBatch]]) -> None:
        for worker_id, handle in handles.items():
            if handle.dead or handle.respawn_at is not None:
                continue
            while (pending[worker_id] and
                   len(handle.outstanding) < self.config.queue_depth):
                batch = pending[worker_id].popleft()
                handle.outstanding[batch.seq] = batch
                now = self._clock()
                handle.dispatched_at[batch.seq] = now
                self._enqueue_ts.setdefault(batch.seq, now)
                handle.inbox.put(("batch", batch))
                if self._telemetry is not None:
                    self._telemetry.record_dispatch(
                        worker_id, len(handle.outstanding))

    def _watchdog(self, handles: Dict[int, _WorkerHandle]) -> None:
        """Kill a live worker whose oldest dispatched batch has been
        outstanding past ``watchdog_timeout`` (hung, not dead — only a
        kill gets its lane moving again).  The next ``_reap`` pass then
        requeues and respawns as for any other death."""
        timeout = self.config.watchdog_timeout
        if not timeout:
            return
        now = self._clock()
        for handle in handles.values():
            if (handle.dead or handle.respawn_at is not None
                    or handle.process is None
                    or not handle.process.is_alive()):
                continue
            if any(now - t > timeout
                   for t in handle.dispatched_at.values()):
                handle.process.terminate()
                self._watchdog_kills += 1

    def _revive(self, ctx, handles: Dict[int, _WorkerHandle],
                outbox) -> int:
        """Start respawns whose backoff deadline has passed."""
        revived = 0
        now = self._clock()
        for handle in handles.values():
            if handle.respawn_at is None or now < handle.respawn_at:
                continue
            handle.respawn_at = None
            self._spawn(ctx, handle, outbox)
            revived += 1
        return revived

    def _collect(self, outbox, handles: Dict[int, _WorkerHandle],
                 results: List[BatchResult], done: set,
                 timeout: Optional[float] = None) -> bool:
        """Drain the shared outbox; returns True if anything arrived.

        *done* holds every batch seq already counted.  A result can
        arrive twice for one seq: the outbox is shared, so a dying
        worker's result may still be buffered in the queue pipe when
        ``_reap``'s drain times out, after which the batch is requeued
        and re-executed by the respawned worker.  First result wins;
        the late duplicate is dropped (and counted) so latency stats and
        completion counts see each request exactly once."""
        got = False
        while True:
            try:
                message = outbox.get(timeout=timeout if not got else 0)
            except queue_mod.Empty:
                return got
            got = True
            if message[0] == "result":
                _, worker_id, result = message
                handles[worker_id].outstanding.pop(result.seq, None)
                handles[worker_id].dispatched_at.pop(result.seq, None)
                if result.seq in done:
                    self._duplicates += 1
                    continue
                done.add(result.seq)
                results.append(result)
                start = self._enqueue_ts.pop(result.seq, None)
                if start is not None:
                    self._queue_waits.append(self._clock() - start)

    def _reap(self, ctx, outbox, handles: Dict[int, _WorkerHandle],
              pending: Dict[int, Deque[RequestBatch]],
              results: List[BatchResult], done: set) -> Tuple[int, int]:
        """Respawn dead workers, requeue their unacknowledged batches.

        Only the batch the worker actually died on — the lowest-seq
        outstanding batch carrying a live crash/hang op — is tombstoned
        (and given an infra strike); later outstanding batches were never
        executed, so their own fault ops must stay live or the inline and
        pool paths would see different fault sequences.  Requeued batches
        keep their original ``_enqueue_ts`` entry: the respawn shows up
        in queue-wait latency instead of resetting it.
        """
        respawned = 0
        lost = 0
        for worker_id, handle in handles.items():
            if handle.dead or handle.respawn_at is not None \
                    or handle.process is None \
                    or handle.process.is_alive():
                continue
            if not handle.outstanding and not pending[worker_id]:
                continue
            # Late results may have been posted before death.
            self._collect(outbox, handles, results, done, timeout=0.05)
            requeue = [b for _, b in sorted(handle.outstanding.items())]
            for i, b in enumerate(requeue):
                if any(op.kind in FAULT_OP_KINDS and op.seed >= 0
                       for op in b.ops):
                    requeue[i] = requeue_batch(b)
                    break
            handle.outstanding.clear()
            handle.dispatched_at.clear()
            if handle.respawns >= self.config.max_worker_respawns:
                handle.dead = True
                lost += sum(len(b.ops) for b in requeue)
                lost += sum(len(b.ops) for b in pending[worker_id])
                pending[worker_id].clear()
                continue
            handle.respawns += 1
            respawned += 1
            pending[worker_id].extendleft(reversed(requeue))
            # A fresh inbox (anything buffered for the dead process is
            # covered by the requeue and must not double-deliver) after a
            # deterministic, jitter-free exponential backoff.
            delay = min(self.config.backoff_cap,
                        self.config.backoff_base
                        * (2 ** (handle.respawns - 1)))
            handle.respawn_at = self._clock() + delay
        return respawned, lost

    def _shutdown(self, handles: Dict[int, _WorkerHandle]) -> None:
        for handle in handles.values():
            if handle.process is None:
                continue
            if handle.process.is_alive():
                try:
                    handle.inbox.put(("stop",))
                except (OSError, ValueError):
                    pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)

    # -- aggregation ---------------------------------------------------------

    def _aggregate(self, schedule: Sequence[RequestBatch],
                   plans: Sequence[TenantPlan],
                   results: List[BatchResult], lost: int,
                   worker_respawns: int, wall: float) -> FleetResult:
        attacked = {p.tenant for p in plans if p.attacked}
        if not plans:
            attacked = {b.tenant for b in schedule
                        if any(op.kind == "exploit" for op in b.ops)}
        tenants: Dict[str, TenantSummary] = {}
        for batch in schedule:
            summary = tenants.setdefault(
                batch.tenant, TenantSummary(batch.tenant, batch.device,
                                            batch.tenant in attacked))
            summary.submitted += len(batch.ops)
        busy: Dict[int, int] = {}
        request_cycles: List[float] = []
        reports: List[Tuple[str, CheckReport]] = []
        retrain: List[RetrainRecord] = []
        stats = FleetStats(workers=self.config.workers,
                           requests=sum(len(b.ops) for b in schedule),
                           lost=lost, worker_respawns=worker_respawns,
                           duplicate_results=self._duplicates,
                           watchdog_kills=self._watchdog_kills,
                           wall_seconds=wall)
        for result in results:
            summary = tenants[result.tenant]
            summary.completed += result.completed
            summary.rejected += result.rejected
            summary.faults += result.faults
            summary.detections += result.detections
            summary.trace_gaps += result.trace_gaps
            summary.infra_failures += result.infra_failures
            summary.shed += result.shed
            summary.exploit_escapes += result.exploit_escapes
            summary.exploit_refusals += result.exploit_refusals
            if result.quarantined:
                summary.quarantined = True
                summary.quarantine_reason = result.quarantine_reason
            if result.policy_id:
                summary.policy_id = result.policy_id
            if result.fenced:
                summary.fenced = True
            stats.completed += result.completed
            stats.rejected += result.rejected
            stats.faults += result.faults
            stats.detections += result.detections
            stats.instance_respawns += result.instance_respawns
            stats.trace_gaps += result.trace_gaps
            stats.infra_failures += result.infra_failures
            stats.shed += result.shed
            stats.circuit_opens += result.circuit_opens
            stats.spec_reloads += result.spec_reloads
            stats.policy_reloads += result.policy_reloads
            stats.policy_throttles += result.policy_throttles
            stats.policy_restores += result.policy_restores
            stats.policy_fences += result.policy_fences
            stats.io_rounds += result.io_rounds
            stats.total_cycles += result.cycles
            busy[result.worker_id] = (busy.get(result.worker_id, 0)
                                      + result.cycles)
            request_cycles.extend(result.op_cycles)
            reports.extend((result.tenant, r) for r in result.reports)
            retrain.extend(result.retrain)
        unaccounted = (stats.requests - stats.completed - stats.rejected
                       - stats.faults - stats.trace_gaps - stats.shed
                       - stats.lost)
        if unaccounted > 0:       # batches that never produced a result
            stats.lost += unaccounted
        stats.quarantined_instances = sum(
            1 for s in tenants.values() if s.quarantined)
        stats.fenced_tenants = sum(
            1 for s in tenants.values() if s.fenced)
        stats.migrations = self._migrations
        # Deterministic order regardless of result arrival (pool results
        # interleave); the count is *produced* records, not queue
        # admissions — the persistent queue dedups against its backlog,
        # which differs between otherwise-identical runs.
        retrain.sort(key=lambda r: (r.seq, r.tenant, r.io_key))
        stats.retrain_candidates = len(retrain)
        self.retrain_queue.extend(retrain)
        stats.makespan_cycles = max(busy.values(), default=0)
        stats.latency_samples = len(request_cycles)
        stats.p50_request_cycles = percentile(request_cycles, 0.50)
        stats.p95_request_cycles = percentile(request_cycles, 0.95)
        stats.p99_request_cycles = percentile(request_cycles, 0.99)
        stats.queue_wait_samples = len(self._queue_waits)
        stats.p50_queue_wait_s = percentile(self._queue_waits, 0.50)
        stats.p95_queue_wait_s = percentile(self._queue_waits, 0.95)
        stats.p99_queue_wait_s = percentile(self._queue_waits, 0.99)
        telemetry = self._telemetry
        if telemetry is not None:
            # Result-level recording happens here, once per counted
            # result, so the dedup in _collect also protects telemetry.
            for result in results:
                telemetry.record_result(result)
            for tenant, report in reports:
                telemetry.record_report(tenant, report)
            for summary in tenants.values():
                if summary.quarantined:
                    telemetry.record_quarantine(summary.tenant)
            if worker_respawns:
                telemetry.worker_respawns.inc(worker_respawns)
            if stats.watchdog_kills:
                telemetry.watchdog_kills.inc(stats.watchdog_kills)
            if stats.lost:
                telemetry.lost.inc(stats.lost)
            if stats.duplicate_results:
                telemetry.duplicates.inc(stats.duplicate_results)
            if stats.spec_reloads:
                telemetry.spec_reloads.inc(stats.spec_reloads)
            if stats.policy_reloads:
                telemetry.policy_reloads.inc(stats.policy_reloads)
            if stats.migrations:
                telemetry.migrations.inc(stats.migrations)
            for result in results:
                telemetry.record_policy(result)
            if stats.retrain_candidates:
                telemetry.retrain_enqueued.inc(stats.retrain_candidates)
        return FleetResult(stats=stats, tenants=tenants, reports=reports,
                           worker_busy_cycles=busy, retrain=retrain)


class FleetSession:
    """Streaming facade over one :class:`FleetSupervisor`.

    ``run()`` takes the whole schedule up front; a session accepts one
    batch at a time — the shape the admission gateway needs, where the
    next dispatch depends on simulated arrivals and coalescing decisions
    made *after* earlier results come back.  Everything else is kept
    identical to ``run()``:

    * tenants are pinned to workers round-robin in order of first
      appearance (``worker_for`` exposes the pin so the gateway's lane
      model matches);
    * crash/hang fault ops cost the worker its instances and a bounded
      respawn (with the same tombstoned requeue and jitter-free
      backoff), and hang ops count a watchdog kill;
    * batches are stamped with scheduled hot reloads at submit time,
      so epoch-based spec swaps behave exactly as in ``run()``;
    * ``close()`` funnels through the same ``_aggregate`` as ``run()``,
      so stats, tenant summaries, retrain records, and telemetry are
      byte-identical given the same executed batches.

    Submission is synchronous: ``submit`` returns the batch's
    :class:`BatchResult`, or ``None`` when the ops were lost to an
    exhausted respawn budget.
    """

    def __init__(self, supervisor: FleetSupervisor):
        self.supervisor = supervisor
        self.config = supervisor.config
        self._start = time.perf_counter()
        self._submitted: List[RequestBatch] = []
        self._results: List[BatchResult] = []
        self._lost = 0
        self._respawns = 0
        self._duplicates = 0
        self._watchdog_kills = 0
        self._migrations = 0
        self._queue_waits: List[float] = []
        self._tenant_worker: Dict[str, int] = {}
        self._primed: set = set()
        self._done: set = set()
        self._closed = False
        if self.config.inline:
            self._workers: Dict[int, FleetWorker] = {}
            self._budget = {w: self.config.max_worker_respawns
                            for w in range(self.config.workers)}
            self._inline_dead: set = set()
        else:
            if supervisor.registry.cache_dir is None:
                raise FleetError(
                    "worker processes share specs via the disk cache; "
                    "set FleetConfig.cache_dir (or use inline=True)")
            self._ctx = supervisor._context()
            self._outbox = self._ctx.Queue()
            self._handles: Dict[int, _WorkerHandle] = {}

    # -- placement ----------------------------------------------------------

    def worker_for(self, tenant: str) -> int:
        """The worker lane *tenant* is pinned to (same first-appearance
        round-robin as ``run()``'s ``_assign``); registers the pin."""
        return self._tenant_worker.setdefault(
            tenant, len(self._tenant_worker) % self.config.workers)

    # -- submission ---------------------------------------------------------

    def submit(self, batch: RequestBatch) -> Optional[BatchResult]:
        if self._closed:
            raise FleetError("session is closed")
        key = (batch.device, batch.qemu_version)
        if key not in self._primed:
            self.supervisor.registry.prime([key])
            self._primed.add(key)
        batch = self.supervisor._stamp_one(batch)
        self._submitted.append(batch)
        worker_id = self.worker_for(batch.tenant)
        enqueued = self.supervisor._clock()
        if self.config.inline:
            result = self._submit_inline(worker_id, batch)
        else:
            result = self._submit_pool(worker_id, batch)
        if result is not None:
            self._queue_waits.append(self.supervisor._clock() - enqueued)
            self._results.append(result)
        return result

    def _submit_inline(self, worker_id: int,
                       batch: RequestBatch) -> Optional[BatchResult]:
        if worker_id in self._inline_dead:
            self._lost += len(batch.ops)
            return None
        worker = self._workers.get(worker_id)
        if worker is None:
            worker = self._workers[worker_id] = \
                self.supervisor._make_worker(worker_id)
        while batch_wants_crash(batch) or batch_wants_hang(batch):
            if self._budget[worker_id] <= 0:
                self._inline_dead.add(worker_id)
                self._lost += len(batch.ops)
                return None
            self._budget[worker_id] -= 1
            self._respawns += 1
            if batch_wants_hang(batch):
                self._watchdog_kills += 1
            worker = self._workers[worker_id] = \
                self.supervisor._make_worker(worker_id)
            batch = requeue_batch(batch)
        return worker.run_batch(batch)

    def _submit_pool(self, worker_id: int,
                     batch: RequestBatch) -> Optional[BatchResult]:
        supervisor = self.supervisor
        handle = self._handles.get(worker_id)
        if handle is None:
            handle = self._handles[worker_id] = _WorkerHandle(worker_id)
            supervisor._spawn(self._ctx, handle, self._outbox)
        if handle.dead:
            self._lost += len(batch.ops)
            return None
        handle.outstanding[batch.seq] = batch
        handle.dispatched_at[batch.seq] = supervisor._clock()
        handle.inbox.put(("batch", batch))
        last_progress = time.monotonic()
        while True:
            try:
                message = self._outbox.get(timeout=0.05)
            except queue_mod.Empty:
                message = None
            if message is not None and message[0] == "result":
                last_progress = time.monotonic()
                _, from_id, result = message
                owner = self._handles[from_id]
                owner.outstanding.pop(result.seq, None)
                owner.dispatched_at.pop(result.seq, None)
                if result.seq != batch.seq or result.seq in self._done:
                    # A late re-delivery from a worker that died after
                    # posting (the requeue race _collect documents), or
                    # a result for a batch already written off as lost.
                    self._duplicates += 1
                    continue
                self._done.add(result.seq)
                return result
            # Watchdog: one outstanding batch, so any over-age dispatch
            # means this lane is hung and only a kill gets it moving.
            timeout = self.config.watchdog_timeout
            if (timeout and handle.process is not None
                    and handle.process.is_alive()
                    and any(supervisor._clock() - t > timeout
                            for t in handle.dispatched_at.values())):
                handle.process.terminate()
                self._watchdog_kills += 1
            if handle.process is not None \
                    and not handle.process.is_alive():
                requeue = [b for _, b
                           in sorted(handle.outstanding.items())]
                for i, b in enumerate(requeue):
                    if any(op.kind in FAULT_OP_KINDS and op.seed >= 0
                           for op in b.ops):
                        requeue[i] = requeue_batch(b)
                        break
                handle.outstanding.clear()
                handle.dispatched_at.clear()
                if handle.respawns >= self.config.max_worker_respawns:
                    handle.dead = True
                    self._lost += sum(len(b.ops) for b in requeue)
                    return None
                handle.respawns += 1
                self._respawns += 1
                delay = min(self.config.backoff_cap,
                            self.config.backoff_base
                            * (2 ** (handle.respawns - 1)))
                time.sleep(delay)
                supervisor._spawn(self._ctx, handle, self._outbox)
                for b in requeue:
                    handle.outstanding[b.seq] = b
                    handle.dispatched_at[b.seq] = supervisor._clock()
                    handle.inbox.put(("batch", b))
                    if b.seq == batch.seq:
                        batch = b   # track the tombstoned incarnation
                last_progress = time.monotonic()
            if (time.monotonic() - last_progress
                    > self.config.stall_timeout):
                raise FleetError("fleet session stalled: no result and "
                                 "no worker exit within stall_timeout")

    # -- live migration ------------------------------------------------------

    def checkpoint_tenant(self, tenant: str) -> Optional[dict]:
        """Capture *tenant*'s sealed checkpoint from its pinned worker.

        Submission is synchronous, so the tenant's lane is drained by
        construction — there is never an in-flight batch at the capture
        instant (the migration protocol's drain step).  Returns ``None``
        when the tenant has no live instance to capture (never served,
        or its worker's respawn budget is spent).
        """
        if self._closed:
            raise FleetError("session is closed")
        worker_id = self._tenant_worker.get(tenant)
        if worker_id is None:
            return None
        if self.config.inline:
            worker = self._workers.get(worker_id)
            if worker is None:
                return None
            return worker.checkpoint_tenant(tenant)
        handle = self._handles.get(worker_id)
        if handle is None or handle.dead:
            return None
        handle.inbox.put(("checkpoint", tenant))
        return self._await_reply("checkpoint", worker_id)

    def install_checkpoint(self, envelope: dict,
                           worker_id: Optional[int] = None) -> str:
        """Restore a checkpoint envelope onto a worker lane and pin the
        tenant there; counts one completed migration.  With no explicit
        *worker_id* the tenant keeps (or round-robin acquires) its pin —
        the cross-shard path, where the receiving session has never seen
        the tenant."""
        if self._closed:
            raise FleetError("session is closed")
        tenant = envelope["tenant"]
        if worker_id is None:
            worker_id = self.worker_for(tenant)
        else:
            if not 0 <= worker_id < self.config.workers:
                raise FleetError(
                    f"no such worker lane: {worker_id}")
            self._tenant_worker[tenant] = worker_id
        if self.config.inline:
            if worker_id in self._inline_dead:
                raise FleetError(
                    f"cannot restore {tenant!r}: worker {worker_id} "
                    f"has spent its respawn budget")
            worker = self._workers.get(worker_id)
            if worker is None:
                worker = self._workers[worker_id] = \
                    self.supervisor._make_worker(worker_id)
            worker.restore_tenant(envelope)
        else:
            handle = self._handles.get(worker_id)
            if handle is None:
                handle = self._handles[worker_id] = \
                    _WorkerHandle(worker_id)
                self.supervisor._spawn(self._ctx, handle, self._outbox)
            if handle.dead:
                raise FleetError(
                    f"cannot restore {tenant!r}: worker {worker_id} "
                    f"has spent its respawn budget")
            handle.inbox.put(("restore", envelope))
            self._await_reply("restored", worker_id)
        self._migrations += 1
        return tenant

    def migrate_tenant(self, tenant: str,
                       target_worker: int) -> Optional[dict]:
        """Live-migrate *tenant* to *target_worker*: drain (implicit —
        submission is synchronous), checkpoint on the source lane,
        re-pin, restore on the target.  Returns the transferred sealed
        envelope, or ``None`` when the tenant had no live instance to
        move (in which case the pin is left untouched)."""
        envelope = self.checkpoint_tenant(tenant)
        if envelope is None:
            return None
        self.install_checkpoint(envelope, worker_id=target_worker)
        return envelope

    def _await_reply(self, kind: str, worker_id: int):
        """Wait for a control-RPC reply on the shared outbox.  Stray
        ``result`` messages (late re-deliveries from a worker that died
        after posting, the race ``_collect`` documents) are dropped and
        counted, exactly as in ``_submit_pool``."""
        deadline = time.monotonic() + self.config.stall_timeout
        while True:
            try:
                message = self._outbox.get(timeout=0.05)
            except queue_mod.Empty:
                message = None
            if message is not None:
                if message[0] == kind and message[1] == worker_id:
                    return message[2]
                if message[0] == "result":
                    self._duplicates += 1
                    continue
            if time.monotonic() > deadline:
                raise FleetError(
                    f"no {kind} reply from worker {worker_id} within "
                    f"stall_timeout")

    # -- teardown -----------------------------------------------------------

    def close(self, plans: Sequence[TenantPlan] = ()) -> FleetResult:
        """Stop workers and aggregate, exactly as ``run()`` would."""
        if self._closed:
            raise FleetError("session already closed")
        self._closed = True
        wall = time.perf_counter() - self._start
        supervisor = self.supervisor
        if not self.config.inline and self._handles:
            supervisor._shutdown(self._handles)
        supervisor._duplicates = self._duplicates
        supervisor._watchdog_kills = self._watchdog_kills
        supervisor._migrations = self._migrations
        supervisor._queue_waits = self._queue_waits
        supervisor._enqueue_ts = {}
        return supervisor._aggregate(self._submitted, plans,
                                     self._results, self._lost,
                                     self._respawns, wall)
