"""Live-migration certification: zero lost/duplicated ops, byte-identical
verdicts.

Migration moves a tenant's guarded instance between worker lanes (or
gateway shards) as a sealed checkpoint envelope.  Its correctness
contract is behavioural, not structural: after the move, the tenant's
verdict stream on the same ops must be **byte-identical** to a run that
never migrated, and op conservation must hold (every submitted op
accounted exactly once — completed, rejected, faulted, degraded, shed,
or lost; nothing double-served).  This module computes canonical
per-tenant verdict signatures and certifies a migrated run against its
never-migrated baseline; the ``repro migrate`` CLI and the
policy-migration smoke job gate on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policy.model import canonical_json, policy_digest


def report_obj(report) -> Dict[str, object]:
    """One CheckReport as canonical, comparison-stable data.

    Only verdict-bearing fields participate: the I/O key, the action,
    the anomaly list, degradation stamps, and the walk fingerprint
    (check-site counts), which the differential tests already hold to
    equality across checker backends.  Policy generation stamps are
    deliberately excluded — a run that hot-reloads an *equivalent*
    policy mid-stream must still certify.
    """
    return {
        "io_key": report.io_key,
        "action": report.action.value,
        "anomalies": [[a.strategy.value, a.kind, a.block_address,
                       a.io_key] for a in report.anomalies],
        "incomplete": report.incomplete,
        "trace_gap": report.trace_gap,
        "policy": report.policy,
        "checks": [report.param_checks, report.indirect_checks,
                   report.conditional_checks],
    }


def verdict_signature(reports: Sequence) -> str:
    """Content digest of one tenant's ordered verdict stream."""
    return policy_digest([report_obj(r) for r in reports])


def tenant_signatures(result) -> Dict[str, str]:
    """Per-tenant verdict signatures of one :class:`FleetResult`.

    ``result.reports`` preserves per-tenant report order (workers append
    in execution order; aggregation keeps result order per tenant), so
    the signature pins both content and sequence.
    """
    streams: Dict[str, List] = {}
    for tenant, report in result.reports:
        streams.setdefault(tenant, []).append(report)
    return {tenant: verdict_signature(reports)
            for tenant, reports in streams.items()}


def conservation_violations(result) -> List[str]:
    """Op-conservation check: every submitted op accounted exactly once.

    Returns human-readable violations (empty means conserved).  The
    supervisor's aggregate already folds unaccounted ops into ``lost``,
    so the fleet-level identity is checked on the stats and then
    re-checked per tenant where the summary carries enough outcomes.
    """
    out: List[str] = []
    stats = result.stats
    accounted = (stats.completed + stats.rejected + stats.faults
                 + stats.trace_gaps + stats.shed + stats.lost)
    if accounted != stats.requests:
        out.append(f"fleet: {stats.requests} submitted but {accounted} "
                   f"accounted (lost/duplicated ops)")
    if stats.duplicate_results:
        # Counted *and dropped* duplicates are benign (requeue race);
        # they are surfaced so a certification log shows them.
        pass
    for tenant, summary in sorted(result.tenants.items()):
        served = (summary.completed + summary.rejected + summary.faults
                  + summary.trace_gaps + summary.shed)
        if served > summary.submitted:
            out.append(f"{tenant}: served {served} ops of "
                       f"{summary.submitted} submitted (duplication)")
    return out


@dataclass
class MigrationCertificate:
    """Outcome of certifying a migrated run against its baseline."""

    backend: str
    tenants: int = 0
    migrations: int = 0
    #: tenants whose post-migration verdict stream diverged
    mismatched: List[str] = field(default_factory=list)
    #: op-conservation violations (either run)
    violations: List[str] = field(default_factory=list)
    #: tenants present in one run but not the other
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.mismatched or self.violations or self.missing)

    def describe(self) -> str:
        verdict = "CERTIFIED" if self.ok else "FAILED"
        lines = [f"migration {verdict}: backend={self.backend} "
                 f"tenants={self.tenants} migrations={self.migrations}"]
        for tenant in self.mismatched:
            lines.append(f"  verdict mismatch: {tenant}")
        for violation in self.violations:
            lines.append(f"  conservation: {violation}")
        for tenant in self.missing:
            lines.append(f"  missing tenant: {tenant}")
        return "\n".join(lines)


def certify(baseline, migrated, backend: str = "") -> MigrationCertificate:
    """Certify *migrated* (a FleetResult from a run with live
    migrations) against *baseline* (the same load, never migrated):
    byte-identical per-tenant verdict streams and op conservation in
    both runs."""
    base_sigs = tenant_signatures(baseline)
    moved_sigs = tenant_signatures(migrated)
    cert = MigrationCertificate(
        backend=backend, tenants=len(baseline.tenants),
        migrations=migrated.stats.migrations)
    cert.missing = sorted(set(base_sigs) ^ set(moved_sigs))
    cert.mismatched = sorted(
        tenant for tenant in set(base_sigs) & set(moved_sigs)
        if base_sigs[tenant] != moved_sigs[tenant])
    cert.violations = (conservation_violations(baseline)
                       + conservation_violations(migrated))
    return cert


def run_migration_certification(devices: Sequence[str] = ("fdc",),
                                tenants: int = 4,
                                batches_per_tenant: int = 4,
                                ops_per_batch: int = 6,
                                backend: str = "compiled",
                                inject_fraction: float = 0.5,
                                migrate_after_batch: int = 1,
                                workers: int = 2,
                                seed: int = 11,
                                config=None) -> MigrationCertificate:
    """Run the live-migration certification for one backend.

    Two sessions serve the identical stamped schedule: the baseline
    never migrates; the other live-migrates **every tenant** to the
    next worker lane after its ``migrate_after_batch``-th batch —
    checkpoint on the source lane, re-pin, restore on the target — and
    keeps serving.  The CVE-carrying tenants (``inject_fraction``) fire
    their PoCs *after* the migration point, so detection verdicts are
    produced by restored instances.
    """
    from repro.fleet.loadgen import build_load
    from repro.fleet.supervisor import FleetConfig, FleetSupervisor

    plans, schedule = build_load(
        list(devices), tenants, batches_per_tenant, ops_per_batch,
        inject_fraction=inject_fraction, seed=seed)
    if config is None:
        config = FleetConfig(workers=workers, inline=True,
                             backend=backend)
    else:
        config = replace(config, workers=workers, backend=backend)

    def serve(migrate: bool):
        supervisor = FleetSupervisor(config)
        session = supervisor.session()
        seen: Dict[str, int] = {}
        for batch in schedule:
            session.submit(batch)
            seen[batch.tenant] = seen.get(batch.tenant, 0) + 1
            if migrate and seen[batch.tenant] == migrate_after_batch + 1:
                source = session.worker_for(batch.tenant)
                target = (source + 1) % config.workers
                session.migrate_tenant(batch.tenant, target)
        return session.close(plans)

    baseline = serve(migrate=False)
    migrated = serve(migrate=True)
    return certify(baseline, migrated, backend=backend)
