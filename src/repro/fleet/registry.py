"""Shared execution-spec registry: train once, deploy everywhere.

Specification-guided systems only pay off at fleet scale if the expensive
offline phase (trace, analyse, construct — seconds per device here, hours
against real QEMU) runs **once** per device build and every worker reuses
the result.  The registry provides that: an in-memory memo backed by an
optional on-disk cache of ``spec_to_json`` payloads that multiple worker
processes share.

Cache keys are **content hashes**: the fingerprint digests the compiled
device program (every block, statement, terminator and address), the state
layout, the entry-handler map and the ``qemu_version`` it was built at.
Change anything about the device model — patch a CVE, add a handler,
re-order a block — and the fingerprint moves, so a stale persisted spec
can never be deployed against a device it was not trained on.  Stale
files are simply never looked up again (and an envelope check rejects a
tampered or hand-renamed file that lies about its fingerprint).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.devices.base import Device, create_device
from repro.errors import SpecError
from repro.spec import ExecutionSpec, spec_from_json, spec_to_json
from repro.spec.serialize import layout_to_obj

#: Bumping this invalidates every persisted spec (format evolution).
#: 2: envelopes carry a ``spec_sha256`` content digest so a bit-flipped
#: payload is rejected instead of silently deploying a mutated spec.
CACHE_FORMAT = 2


def _spec_digest(spec_obj) -> str:
    """Content hash of the serialized spec payload inside an envelope."""
    return hashlib.sha256(
        json.dumps(spec_obj, sort_keys=True).encode()).hexdigest()


def program_fingerprint(device: Device) -> str:
    """Content hash of one built device: program + layout + version."""
    payload = "\n".join((
        f"format:{CACHE_FORMAT}",
        f"device:{device.NAME}",
        f"qemu:{device.qemu_version}",
        "layout:" + json.dumps(layout_to_obj(device.program.layout),
                               sort_keys=True),
        "entries:" + json.dumps(device.program.entry_handlers,
                                sort_keys=True),
        str(device.program),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RegistryStats:
    """Where each ``get`` was served from."""

    trains: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stale_rejected: int = 0
    #: unreadable/truncated/bit-flipped envelopes rejected on load; each
    #: one recovers by retraining, never by deploying a mutated spec
    corrupt_rejected: int = 0


class SpecRegistry:
    """Train-or-load execution specs keyed by (device, qemu_version).

    With a ``cache_dir`` the registry persists every trained spec and
    serves later requests — including from other processes — from disk;
    without one it degrades to a per-process memo.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 seed: int = 7, repeats: int = 2):
        self.cache_dir = cache_dir
        self.seed = seed
        self.repeats = repeats
        self.stats = RegistryStats()
        self._memory: Dict[Tuple[str, str], ExecutionSpec] = {}
        self._fingerprints: Dict[Tuple[str, str], str] = {}

    # -- keys ---------------------------------------------------------------

    def fingerprint(self, device_name: str, qemu_version: str) -> str:
        key = (device_name, qemu_version)
        if key not in self._fingerprints:
            device = create_device(device_name, qemu_version=qemu_version)
            self._fingerprints[key] = program_fingerprint(device)
        return self._fingerprints[key]

    def cache_path(self, device_name: str,
                   qemu_version: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        digest = self.fingerprint(device_name, qemu_version)
        return os.path.join(
            self.cache_dir,
            f"{device_name}-{qemu_version}-{digest[:16]}.spec.json")

    # -- the train-or-load path --------------------------------------------

    def get(self, device_name: str,
            qemu_version: str = "99.0.0") -> ExecutionSpec:
        key = (device_name, qemu_version)
        spec = self._memory.get(key)
        if spec is not None:
            self.stats.memory_hits += 1
            return spec
        spec = self._load(device_name, qemu_version)
        if spec is None:
            spec = self._train(device_name, qemu_version)
        self._memory[key] = spec
        return spec

    def prime(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Train/load every (device, qemu_version) pair up front, so
        worker processes find a warm disk cache instead of retraining."""
        for device_name, qemu_version in pairs:
            self.get(device_name, qemu_version)

    def _load(self, device_name: str,
              qemu_version: str) -> Optional[ExecutionSpec]:
        path = self.cache_path(device_name, qemu_version)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            # Truncated or garbled on disk: recover by retraining.
            self.stats.corrupt_rejected += 1
            return None
        if not isinstance(envelope, dict):
            self.stats.corrupt_rejected += 1
            return None
        if (envelope.get("format") != CACHE_FORMAT
                or envelope.get("fingerprint")
                != self.fingerprint(device_name, qemu_version)):
            self.stats.stale_rejected += 1
            return None
        try:
            spec_obj = envelope["spec"]
            if envelope.get("spec_sha256") != _spec_digest(spec_obj):
                # A valid-JSON envelope whose payload was mutated (e.g.
                # a bit flip inside a number) would otherwise deploy a
                # spec the device was never trained for.
                self.stats.corrupt_rejected += 1
                return None
            spec = spec_from_json(spec_obj)
        except (KeyError, TypeError, ValueError, SpecError):
            self.stats.corrupt_rejected += 1
            return None
        self.stats.disk_hits += 1
        return spec

    def _train(self, device_name: str, qemu_version: str) -> ExecutionSpec:
        from repro.workloads.profiles import train_device_spec

        spec = train_device_spec(device_name, qemu_version=qemu_version,
                                 seed=self.seed,
                                 repeats=self.repeats).spec
        self.stats.trains += 1
        self._persist(device_name, qemu_version, spec)
        return spec

    def _persist(self, device_name: str, qemu_version: str,
                 spec: ExecutionSpec) -> None:
        path = self.cache_path(device_name, qemu_version)
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        spec_obj = spec_to_json(spec)
        envelope = {
            "format": CACHE_FORMAT,
            "device": device_name,
            "qemu_version": qemu_version,
            "fingerprint": self.fingerprint(device_name, qemu_version),
            "train_seed": self.seed,
            "train_repeats": self.repeats,
            "spec_sha256": _spec_digest(spec_obj),
            "spec": spec_obj,
        }
        # Atomic publish: concurrent workers either see the whole file
        # or none of it, never a torn write.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
