"""Shared execution-spec registry: train once, deploy everywhere.

Specification-guided systems only pay off at fleet scale if the expensive
offline phase (trace, analyse, construct — seconds per device here, hours
against real QEMU) runs **once** per device build and every worker reuses
the result.  The registry provides that: an in-memory memo backed by an
optional on-disk cache of ``spec_to_json`` payloads that multiple worker
processes share.

Cache keys are **content hashes**: the fingerprint digests the compiled
device program (every block, statement, terminator and address), the state
layout, the entry-handler map and the ``qemu_version`` it was built at.
Change anything about the device model — patch a CVE, add a handler,
re-order a block — and the fingerprint moves, so a stale persisted spec
can never be deployed against a device it was not trained on.  Stale
files are simply never looked up again (and an envelope check rejects a
tampered or hand-renamed file that lies about its fingerprint).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.devices.base import Device, create_device
from repro.errors import SpecError
from repro.spec import ExecutionSpec, spec_from_json, spec_to_json
from repro.spec.serialize import layout_to_obj

#: Bumping this invalidates every persisted spec (format evolution).
#: 2: envelopes carry a ``spec_sha256`` content digest so a bit-flipped
#: payload is rejected instead of silently deploying a mutated spec.
CACHE_FORMAT = 2


def _spec_digest(spec_obj) -> str:
    """Content hash of the serialized spec payload inside an envelope."""
    return hashlib.sha256(
        json.dumps(spec_obj, sort_keys=True).encode()).hexdigest()


def spec_digest(spec: ExecutionSpec) -> str:
    """Content address of a spec: the digest generation chains key on."""
    return _spec_digest(spec_to_json(spec))


def program_fingerprint(device: Device) -> str:
    """Content hash of one built device: program + layout + version."""
    payload = "\n".join((
        f"format:{CACHE_FORMAT}",
        f"device:{device.NAME}",
        f"qemu:{device.qemu_version}",
        "layout:" + json.dumps(layout_to_obj(device.program.layout),
                               sort_keys=True),
        "entries:" + json.dumps(device.program.entry_handlers,
                                sort_keys=True),
        str(device.program),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RegistryStats:
    """Where each ``get`` was served from."""

    trains: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stale_rejected: int = 0
    #: unreadable/truncated/bit-flipped envelopes rejected on load; each
    #: one recovers by retraining, never by deploying a mutated spec
    corrupt_rejected: int = 0
    #: generation-chain traffic (spec lifecycle)
    publishes: int = 0
    activations: int = 0
    generation_hits: int = 0


@dataclass
class SpecGeneration:
    """One link of a per-(device, qemu_version) spec generation chain.

    Promoted/retrained specs are first-class artifacts: each generation
    records its content digest, its parent digests (the candidates that
    were merged into it), where it came from, and what it bought in
    coverage — so ``repro spec generations`` can show the lineage and a
    hot reload can name exactly which artifact it is deploying.
    """

    device: str
    qemu_version: str
    generation: int                 # 1-based position in the chain
    digest: str                     # content address of the spec payload
    parents: Tuple[str, ...] = ()   # digests this generation merged
    provenance: str = ""            # training/promotion site description
    coverage_gain: float = 0.0      # block-coverage gain over parent
    edge_gain: int = 0              # new ITC-CFG edges over parent
    merged_from: int = 1            # training sites folded in
    block_count: int = 0
    edge_count: int = 0

    def to_obj(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "qemu_version": self.qemu_version,
            "generation": self.generation,
            "digest": self.digest,
            "parents": list(self.parents),
            "provenance": self.provenance,
            "coverage_gain": self.coverage_gain,
            "edge_gain": self.edge_gain,
            "merged_from": self.merged_from,
            "block_count": self.block_count,
            "edge_count": self.edge_count,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "SpecGeneration":
        return cls(
            device=str(obj["device"]),
            qemu_version=str(obj["qemu_version"]),
            generation=int(obj["generation"]),
            digest=str(obj["digest"]),
            parents=tuple(str(p) for p in obj.get("parents", ())),
            provenance=str(obj.get("provenance", "")),
            coverage_gain=float(obj.get("coverage_gain", 0.0)),
            edge_gain=int(obj.get("edge_gain", 0)),
            merged_from=int(obj.get("merged_from", 1)),
            block_count=int(obj.get("block_count", 0)),
            edge_count=int(obj.get("edge_count", 0)),
        )

    def describe(self) -> str:
        parents = ",".join(p[:12] for p in self.parents) or "-"
        return (f"gen {self.generation}  {self.digest[:16]}  "
                f"sites={self.merged_from}  blocks={self.block_count}  "
                f"edges={self.edge_count}  gain={self.coverage_gain:.3f}  "
                f"parents={parents}  {self.provenance}")


class SpecRegistry:
    """Train-or-load execution specs keyed by (device, qemu_version).

    With a ``cache_dir`` the registry persists every trained spec and
    serves later requests — including from other processes — from disk;
    without one it degrades to a per-process memo.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 seed: int = 7, repeats: int = 2):
        self.cache_dir = cache_dir
        self.seed = seed
        self.repeats = repeats
        self.stats = RegistryStats()
        self._memory: Dict[Tuple[str, str], ExecutionSpec] = {}
        self._fingerprints: Dict[Tuple[str, str], str] = {}
        #: generation chains, newest last; loaded lazily from disk
        self._generations: Dict[Tuple[str, str], List[SpecGeneration]] = {}
        self._active: Dict[Tuple[str, str], str] = {}
        self._by_digest: Dict[str, ExecutionSpec] = {}
        #: content-addressed lowered bytecode artifacts (interp/checker)
        self._bytecode: Dict[str, object] = {}
        #: spec-specialized batched dispatch payloads, keyed by the
        #: digest of the bytecode they were specialized from
        self._batch: Dict[str, Dict[str, object]] = {}
        #: content-addressed tenant-policy sets; rides the same cache_dir
        #: so pool worker processes resolve policy digests exactly the
        #: way they resolve spec digests
        from repro.policy.model import PolicyStore
        self.policies = PolicyStore(cache_dir)

    # -- keys ---------------------------------------------------------------

    def fingerprint(self, device_name: str, qemu_version: str) -> str:
        key = (device_name, qemu_version)
        if key not in self._fingerprints:
            device = create_device(device_name, qemu_version=qemu_version)
            self._fingerprints[key] = program_fingerprint(device)
        return self._fingerprints[key]

    def cache_path(self, device_name: str,
                   qemu_version: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        digest = self.fingerprint(device_name, qemu_version)
        return os.path.join(
            self.cache_dir,
            f"{device_name}-{qemu_version}-{digest[:16]}.spec.json")

    def generations_path(self, device_name: str,
                         qemu_version: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        digest = self.fingerprint(device_name, qemu_version)
        return os.path.join(
            self.cache_dir,
            f"{device_name}-{qemu_version}-{digest[:16]}.generations.json")

    def generation_spec_path(self, digest: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir,
                            f"gen-{digest[:16]}.spec.json")

    # -- the train-or-load path --------------------------------------------

    def get(self, device_name: str,
            qemu_version: str = "99.0.0") -> ExecutionSpec:
        key = (device_name, qemu_version)
        spec = self._memory.get(key)
        if spec is not None:
            self.stats.memory_hits += 1
            return spec
        spec = self._load_active(device_name, qemu_version)
        if spec is None:
            spec = self._load(device_name, qemu_version)
        if spec is None:
            spec = self._train(device_name, qemu_version)
        self._memory[key] = spec
        return spec

    def prime(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Train/load every (device, qemu_version) pair up front, so
        worker processes find a warm disk cache instead of retraining.
        Composite device names split into their parts here — the
        registry itself stays strictly per-device."""
        for device_name, qemu_version in pairs:
            for part in device_name.split("+"):
                self.get(part, qemu_version)

    def _load(self, device_name: str,
              qemu_version: str) -> Optional[ExecutionSpec]:
        path = self.cache_path(device_name, qemu_version)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            # Truncated or garbled on disk: recover by retraining.
            self.stats.corrupt_rejected += 1
            return None
        if not isinstance(envelope, dict):
            self.stats.corrupt_rejected += 1
            return None
        if (envelope.get("format") != CACHE_FORMAT
                or envelope.get("fingerprint")
                != self.fingerprint(device_name, qemu_version)):
            self.stats.stale_rejected += 1
            return None
        try:
            spec_obj = envelope["spec"]
            if envelope.get("spec_sha256") != _spec_digest(spec_obj):
                # A valid-JSON envelope whose payload was mutated (e.g.
                # a bit flip inside a number) would otherwise deploy a
                # spec the device was never trained for.
                self.stats.corrupt_rejected += 1
                return None
            spec = spec_from_json(spec_obj)
        except (KeyError, TypeError, ValueError, SpecError):
            self.stats.corrupt_rejected += 1
            return None
        self.stats.disk_hits += 1
        return spec

    def _train(self, device_name: str, qemu_version: str) -> ExecutionSpec:
        from repro.workloads.profiles import train_device_spec

        spec = train_device_spec(device_name, qemu_version=qemu_version,
                                 seed=self.seed,
                                 repeats=self.repeats).spec
        self.stats.trains += 1
        self._persist(device_name, qemu_version, spec)
        return spec

    def _persist(self, device_name: str, qemu_version: str,
                 spec: ExecutionSpec) -> None:
        path = self.cache_path(device_name, qemu_version)
        if path is None:
            return
        spec_obj = spec_to_json(spec)
        envelope = {
            "format": CACHE_FORMAT,
            "device": device_name,
            "qemu_version": qemu_version,
            "fingerprint": self.fingerprint(device_name, qemu_version),
            "train_seed": self.seed,
            "train_repeats": self.repeats,
            "spec_sha256": _spec_digest(spec_obj),
            "spec": spec_obj,
        }
        _atomic_write_json(path, envelope)

    # -- generation chains ---------------------------------------------------

    def _chain(self, device_name: str,
               qemu_version: str) -> List[SpecGeneration]:
        key = (device_name, qemu_version)
        if key in self._generations:
            return self._generations[key]
        chain: List[SpecGeneration] = []
        path = self.generations_path(device_name, qemu_version)
        if path is not None and os.path.exists(path):
            try:
                with open(path) as handle:
                    obj = json.load(handle)
                if (isinstance(obj, dict)
                        and obj.get("format") == CACHE_FORMAT
                        and obj.get("fingerprint")
                        == self.fingerprint(device_name, qemu_version)):
                    chain = [SpecGeneration.from_obj(g)
                             for g in obj.get("generations", [])]
                    active = obj.get("active")
                    if active:
                        self._active[key] = str(active)
                else:
                    self.stats.stale_rejected += 1
            except (OSError, ValueError, KeyError, TypeError):
                self.stats.corrupt_rejected += 1
        self._generations[key] = chain
        return chain

    def _persist_chain(self, device_name: str, qemu_version: str) -> None:
        path = self.generations_path(device_name, qemu_version)
        if path is None:
            return
        key = (device_name, qemu_version)
        _atomic_write_json(path, {
            "format": CACHE_FORMAT,
            "device": device_name,
            "qemu_version": qemu_version,
            "fingerprint": self.fingerprint(device_name, qemu_version),
            "active": self._active.get(key),
            "generations": [g.to_obj() for g in self._chain(
                device_name, qemu_version)],
        })

    def publish(self, device_name: str, qemu_version: str,
                spec: ExecutionSpec, provenance: str = "",
                parents: Iterable[str] = (),
                coverage_gain: float = 0.0,
                edge_gain: int = 0) -> SpecGeneration:
        """Append *spec* to the generation chain as a named artifact.

        Publishing is idempotent on content: re-publishing a digest the
        chain already holds returns the existing generation.  Publishing
        does **not** change which generation ``get`` serves — that takes
        an explicit :meth:`activate` (or a fleet hot reload by digest).
        """
        digest = spec_digest(spec)
        chain = self._chain(device_name, qemu_version)
        for gen in chain:
            if gen.digest == digest:
                self._by_digest[digest] = spec
                return gen
        gen = SpecGeneration(
            device=device_name, qemu_version=qemu_version,
            generation=len(chain) + 1, digest=digest,
            parents=tuple(parents), provenance=provenance,
            coverage_gain=coverage_gain, edge_gain=edge_gain,
            merged_from=int(spec.stats.get("merged_from", 1)),
            block_count=spec.block_count(),
            edge_count=len(spec.observed_edges()))
        chain.append(gen)
        self._by_digest[digest] = spec
        path = self.generation_spec_path(digest)
        if path is not None:
            _atomic_write_json(path, {
                "format": CACHE_FORMAT,
                "device": device_name,
                "qemu_version": qemu_version,
                "fingerprint": self.fingerprint(device_name,
                                                qemu_version),
                "spec_sha256": digest,
                "spec": spec_to_json(spec),
            })
        self._persist_chain(device_name, qemu_version)
        self.stats.publishes += 1
        return gen

    def ensure_base_generation(self, device_name: str,
                               qemu_version: str) -> SpecGeneration:
        """Bootstrap a chain: publish the train-once spec as generation 1.

        Chains are opt-in — plain ``get`` traffic never creates one, so
        the legacy cache path (and its tamper checks) are untouched until
        lifecycle code starts versioning a device.  Idempotent.
        """
        chain = self._chain(device_name, qemu_version)
        if chain:
            active = self.active_generation(device_name, qemu_version)
            return active if active is not None else chain[-1]
        spec = self.get(device_name, qemu_version)
        gen = self.publish(
            device_name, qemu_version, spec,
            provenance=f"train:seed={self.seed}:repeats={self.repeats}")
        self.activate(device_name, qemu_version, gen.digest)
        return gen

    def activate(self, device_name: str, qemu_version: str,
                 digest: str) -> SpecGeneration:
        """Make a published generation the one ``get`` serves."""
        chain = self._chain(device_name, qemu_version)
        gen = next((g for g in chain if g.digest == digest), None)
        if gen is None:
            raise SpecError(
                f"cannot activate unknown generation {digest[:16]} for "
                f"({device_name}, {qemu_version}) — publish it first")
        key = (device_name, qemu_version)
        self._active[key] = digest
        self._memory[key] = self.spec_by_digest(digest)
        self._persist_chain(device_name, qemu_version)
        self.stats.activations += 1
        return gen

    def generations(self, device_name: str,
                    qemu_version: str) -> List[SpecGeneration]:
        return list(self._chain(device_name, qemu_version))

    def active_generation(self, device_name: str,
                          qemu_version: str) -> Optional[SpecGeneration]:
        chain = self._chain(device_name, qemu_version)
        digest = self._active.get((device_name, qemu_version))
        if digest is None:
            return None
        return next((g for g in chain if g.digest == digest), None)

    def spec_by_digest(self, digest: str) -> ExecutionSpec:
        """Fetch a published spec by content address (cross-process:
        worker processes resolve hot-reload digests through here)."""
        spec = self._by_digest.get(digest)
        if spec is not None:
            return spec
        path = self.generation_spec_path(digest)
        if path is None or not os.path.exists(path):
            raise SpecError(
                f"no published spec artifact for digest {digest[:16]}")
        try:
            with open(path) as handle:
                envelope = json.load(handle)
            spec_obj = envelope["spec"]
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.corrupt_rejected += 1
            raise SpecError(
                f"generation artifact for {digest[:16]} is unreadable")
        if (not isinstance(envelope, dict)
                or envelope.get("format") != CACHE_FORMAT
                or envelope.get("spec_sha256") != digest
                or _spec_digest(spec_obj) != digest):
            self.stats.corrupt_rejected += 1
            raise SpecError(
                f"generation artifact for {digest[:16]} fails its "
                f"content-digest check")
        spec = spec_from_json(spec_obj)
        self._by_digest[digest] = spec
        self.stats.generation_hits += 1
        return spec

    # -- bytecode artifacts ---------------------------------------------------

    def bytecode_path(self, digest: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir,
                            f"bc-{digest[:16]}.bytecode.json")

    def store_bytecode(self, artifact) -> str:
        """Persist a lowered bytecode artifact, content-addressed.

        *artifact* is either an interpreter :class:`BytecodeProgram` or
        a checker :class:`BytecodeSpec` — anything exposing
        ``to_payload()``/``digest()``.  The digest is the sha256 of the
        canonical payload JSON, so the address moves with any semantic
        change to the lowered code.  Returns the digest.
        """
        digest = artifact.digest()
        self._bytecode[digest] = artifact
        path = self.bytecode_path(digest)
        if path is not None:
            payload = artifact.to_payload()
            _atomic_write_json(path, {
                "format": CACHE_FORMAT,
                "kind": payload["kind"],
                "sha256": digest,
                "payload": payload,
            })
        return digest

    def load_bytecode(self, digest: str):
        """Fetch a stored bytecode artifact by content address.

        The envelope's claimed digest *and* the payload's recomputed
        digest must both match the address — a tampered or hand-renamed
        file is rejected (``corrupt_rejected``), exactly like spec
        envelopes.  Raises :class:`SpecError` when absent or invalid.
        """
        artifact = self._bytecode.get(digest)
        if artifact is not None:
            return artifact
        path = self.bytecode_path(digest)
        if path is None or not os.path.exists(path):
            raise SpecError(
                f"no bytecode artifact for digest {digest[:16]}")
        try:
            with open(path) as handle:
                envelope = json.load(handle)
            payload = envelope["payload"]
            kind = envelope["kind"]
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.corrupt_rejected += 1
            raise SpecError(
                f"bytecode artifact for {digest[:16]} is unreadable")
        if (not isinstance(envelope, dict)
                or envelope.get("format") != CACHE_FORMAT
                or envelope.get("sha256") != digest):
            self.stats.corrupt_rejected += 1
            raise SpecError(
                f"bytecode artifact for {digest[:16]} fails its "
                f"envelope check")
        try:
            if kind == "interp-bytecode":
                from repro.interp.bytecode import BytecodeProgram
                artifact = BytecodeProgram.from_payload(payload)
            elif kind == "checker-bytecode":
                from repro.checker.bytecode import BytecodeSpec
                artifact = BytecodeSpec.from_payload(payload)
            else:
                raise SpecError(
                    f"unknown bytecode artifact kind {kind!r}")
        except SpecError:
            self.stats.corrupt_rejected += 1
            raise
        except Exception:
            self.stats.corrupt_rejected += 1
            raise SpecError(
                f"bytecode artifact for {digest[:16]} fails to decode")
        if artifact.digest() != digest:
            self.stats.corrupt_rejected += 1
            raise SpecError(
                f"bytecode artifact for {digest[:16]} fails its "
                f"content-digest check")
        self._bytecode[digest] = artifact
        return artifact

    # -- specialized batch dispatch artifacts ---------------------------------

    def batch_dispatch_path(self, bytecode_digest: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir,
                            f"bd-{bytecode_digest[:16]}.batch.json")

    def store_batch_dispatch(self, bspec) -> str:
        """Persist a spec-specialized batched dispatch artifact.

        *bspec* is a checker :class:`BytecodeSpec`; its
        ``batch_payload()`` (generated source + folded constant tables)
        is stored **addressed by the digest of the bytecode it was
        specialized from**, so a later :meth:`load_batch_dispatch` on
        the same spec generation finds it without re-specializing —
        and a different generation's lookup simply misses.  The
        payload's own content digest rides in the envelope for the
        tamper check.  Returns the payload digest.
        """
        payload = bspec.batch_payload()
        bc_digest = payload["bytecode_digest"]
        digest = _payload_digest(payload)
        self._batch[bc_digest] = payload
        path = self.batch_dispatch_path(bc_digest)
        if path is not None:
            _atomic_write_json(path, {
                "format": CACHE_FORMAT,
                "kind": payload["kind"],
                "bytecode_sha256": bc_digest,
                "sha256": digest,
                "payload": payload,
            })
        return digest

    def load_batch_dispatch(self, bspec) -> bool:
        """Attach a cached specialized dispatch to *bspec* if one exists.

        Returns ``True`` on a hit (the spec's batched entry now runs the
        cached source without re-specializing).  A missing artifact
        returns ``False`` — the caller specializes lazily as usual.  A
        tampered, truncated or wrong-generation envelope is rejected
        (``corrupt_rejected``) and also returns ``False``: corruption
        degrades to re-specialization, never to running altered code.
        """
        bc_digest = bspec.digest()
        payload = self._batch.get(bc_digest)
        if payload is None:
            path = self.batch_dispatch_path(bc_digest)
            if path is None or not os.path.exists(path):
                return False
            try:
                with open(path) as handle:
                    envelope = json.load(handle)
                payload = envelope["payload"]
            except (OSError, ValueError, KeyError, TypeError):
                self.stats.corrupt_rejected += 1
                return False
            if (not isinstance(envelope, dict)
                    or envelope.get("format") != CACHE_FORMAT
                    or envelope.get("bytecode_sha256") != bc_digest
                    or envelope.get("sha256") != _payload_digest(payload)):
                self.stats.corrupt_rejected += 1
                return False
        try:
            bspec.attach_batch_payload(payload)
        except Exception:
            self.stats.corrupt_rejected += 1
            return False
        self._batch[bc_digest] = payload
        return True

    def _load_active(self, device_name: str,
                     qemu_version: str) -> Optional[ExecutionSpec]:
        digest = self._active.get((device_name, qemu_version))
        if digest is None:
            self._chain(device_name, qemu_version)   # may load it
            digest = self._active.get((device_name, qemu_version))
        if digest is None:
            return None
        try:
            spec = self.spec_by_digest(digest)
        except SpecError:
            return None
        self.stats.disk_hits += 1
        return spec


def _payload_digest(payload) -> str:
    """Canonical content digest of a JSON-safe artifact payload."""
    blob = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _atomic_write_json(path: str, obj) -> None:
    """Atomic publish: concurrent workers either see the whole file or
    none of it, never a torn write."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(obj, handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
