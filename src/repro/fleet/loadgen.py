"""Fleet load generation: pure-data request schedules.

Work items must cross process boundaries, so they are plain picklable
records: an :class:`OpRequest` names a guest operation by *index* into the
tenant's :class:`~repro.workloads.profiles.DeviceProfile` op lists (plus a
seed), and the worker resolves it locally.  Benign traffic is sampled with
the profile's op weights — the same mix the interaction experiments use —
and an injectable fraction of tenants receives one of the nine CVE
proofs-of-concept mid-stream, with the tenant's device built at that
CVE's vulnerable ``qemu_version``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.exploits import EXPLOITS

DEFAULT_QEMU_VERSION = "99.0.0"

#: Request kinds a worker understands.  ``crash`` and ``hang`` are
#: fault-injection hooks: a worker *process* receiving a live crash op
#: dies on the spot and one receiving a live hang op stops responding
#: (watchdog fodder); a tombstoned one (seed < 0) is a no-op so the
#: respawned worker can drain the requeued batch.
OP_KINDS = ("common", "rare", "exploit", "crash", "hang")

#: Op kinds that take the worker process down when live.
FAULT_OP_KINDS = ("crash", "hang")


@dataclass(frozen=True)
class OpRequest:
    kind: str                   # one of OP_KINDS
    index: int = 0              # op index within the profile's op list
    seed: int = 0               # per-op RNG seed (< 0: tombstoned fault)
    cve: str = ""               # for kind == "exploit"


@dataclass(frozen=True)
class RequestBatch:
    """One unit of dispatch: a slice of one tenant's request stream."""

    tenant: str
    device: str
    qemu_version: str
    seq: int                    # globally unique, per-tenant monotonic
    ops: Tuple[OpRequest, ...]
    #: how many times this batch has been requeued after an
    #: infrastructure failure (worker crash/hang).  Seeds the worker's
    #: per-tenant circuit breaker, so the breaker state survives the
    #: respawn that destroyed the worker's memory — and so the inline
    #: and pool paths see identical breaker inputs.
    infra_strikes: int = 0
    #: spec generation this batch must run under.  Stamped up front by
    #: the supervisor from its reload schedule (never at run time), so
    #: the inline and pool paths swap specs at identical batch
    #: boundaries: a worker seeing ``spec_epoch`` above its instance's
    #: epoch reloads the spec named by ``spec_digest`` before the first
    #: op.  Epoch 0 / empty digest means the train-once registry spec.
    spec_epoch: int = 0
    spec_digest: str = ""
    #: tenant-policy generation this batch must run under, stamped up
    #: front exactly like ``spec_epoch``: a worker seeing
    #: ``policy_epoch`` above the tenant's current policy epoch loads
    #: the policy set named by ``policy_digest`` before the first op, so
    #: in-flight batches always finish under the policy they started
    #: under and the inline/pool paths swap at identical boundaries.
    #: Epoch 0 / empty digest means the fleet's configured policies.
    policy_epoch: int = 0
    policy_digest: str = ""


@dataclass(frozen=True)
class TenantPlan:
    """One fleet tenant: a guarded device instance and its traffic."""

    tenant: str
    device: str
    qemu_version: str = DEFAULT_QEMU_VERSION
    attack_cve: str = ""        # "" means benign

    @property
    def attacked(self) -> bool:
        return bool(self.attack_cve)


def _device_parts(devices: Sequence[str]) -> set:
    """Every concrete device hosted by *devices*, with composite
    ``a+b`` tenant names expanded to their parts."""
    parts = set()
    for device in devices:
        parts.update(p for p in device.split("+") if p)
    return parts


def detectable_cves(devices: Sequence[str]) -> List[str]:
    """Attack ids the fraction-based injector may draw from: hosted on
    one of *devices* (composite names count each part) and not a
    documented miss (we inject to see detections).  Devices with no
    seeded real CVE — the virtio pair — contribute their synthetic
    corpus PoC ids instead, so fraction injection and chaos campaigns
    cover them through the same pathway."""
    parts = _device_parts(devices)
    picks = [e.cve for e in EXPLOITS
             if e.device in parts and not e.expected_miss]
    covered = {e.device for e in EXPLOITS}
    uncovered = sorted(parts - covered)
    if uncovered:
        from repro.exploits.corpus import corpus_cve_ids
        for device in uncovered:
            picks.extend(corpus_cve_ids(device))
    return picks


def plan_tenants(devices: Sequence[str], tenants: int,
                 inject_cves: Sequence[str] = (),
                 inject_fraction: float = 0.0,
                 qemu_version: str = DEFAULT_QEMU_VERSION,
                 seed: int = 0) -> List[TenantPlan]:
    """Lay out *tenants* across *devices* round-robin, then mark some as
    attacked: every explicitly requested CVE plus enough fraction-drawn
    ones to reach ``round(inject_fraction * tenants)``."""
    if not devices:
        raise WorkloadError("need at least one device for a fleet plan")
    plans = [TenantPlan(f"t{i:02d}-{devices[i % len(devices)]}",
                        devices[i % len(devices)], qemu_version)
             for i in range(tenants)]
    rng = random.Random(seed)
    attacks = list(inject_cves)
    want = round(inject_fraction * tenants)
    pool = [c for c in detectable_cves(devices) if c not in attacks]
    rng.shuffle(pool)
    while len(attacks) < want and pool:
        attacks.append(pool.pop())
    for cve in attacks:
        from repro.exploits.corpus import resolve_attack
        exploit = resolve_attack(cve)
        for i, plan in enumerate(plans):
            if (exploit.device in plan.device.split("+")
                    and not plan.attacked):
                plans[i] = replace(plan, attack_cve=cve,
                                   qemu_version=exploit.qemu_version)
                break
        else:
            raise WorkloadError(
                f"no free tenant hosts a {exploit.device} for {cve}")
    return plans


def sample_benign_op(device: str, rng: random.Random) -> OpRequest:
    """One weighted-benign common op — the same mix the interaction
    experiments use.  Shared by the closed-loop schedule builder and the
    gateway's open-loop arrival streams; draws exactly two values from
    *rng* (choice then seed), so extracting it preserved every existing
    seeded schedule byte-for-byte.  Composite device names resolve to
    the synthesized multi-device profile."""
    from repro.workloads.profiles import profile

    prof = profile(device)
    indices = range(len(prof.common_ops))
    index = rng.choices(indices, weights=prof.op_weights)[0]
    return OpRequest("common", index, rng.randrange(1 << 31))


def make_schedule(plans: Sequence[TenantPlan], batches_per_tenant: int,
                  ops_per_batch: int, seed: int = 0,
                  attack_batch: Optional[int] = None
                  ) -> List[RequestBatch]:
    """Benign streams per tenant (weighted common ops), the attacked
    tenants' PoC spliced into batch *attack_batch* (default: midway),
    interleaved round-robin the way concurrent guests arrive."""
    rng = random.Random(seed)
    if attack_batch is None:
        attack_batch = batches_per_tenant // 2
    per_tenant: Dict[str, List[List[OpRequest]]] = {}
    for plan in plans:
        batches = []
        for b in range(batches_per_tenant):
            ops = [sample_benign_op(plan.device, rng)
                   for _ in range(ops_per_batch)]
            if plan.attacked and b == attack_batch:
                ops[0] = OpRequest("exploit", cve=plan.attack_cve)
            batches.append(ops)
        per_tenant[plan.tenant] = batches
    schedule: List[RequestBatch] = []
    seq = 0
    for b in range(batches_per_tenant):
        for plan in plans:
            schedule.append(RequestBatch(
                plan.tenant, plan.device, plan.qemu_version, seq,
                tuple(per_tenant[plan.tenant][b])))
            seq += 1
    return schedule


def build_load(devices: Sequence[str], tenants: int,
               batches_per_tenant: int, ops_per_batch: int,
               inject_cves: Sequence[str] = (),
               inject_fraction: float = 0.0,
               qemu_version: str = DEFAULT_QEMU_VERSION,
               seed: int = 0
               ) -> Tuple[List[TenantPlan], List[RequestBatch]]:
    """Convenience: plan tenants and generate their whole schedule."""
    plans = plan_tenants(devices, tenants, inject_cves=inject_cves,
                         inject_fraction=inject_fraction,
                         qemu_version=qemu_version, seed=seed)
    return plans, make_schedule(plans, batches_per_tenant,
                                ops_per_batch, seed=seed)


def inject_schedule_faults(schedule: Sequence[RequestBatch],
                           plan) -> List[RequestBatch]:
    """Materialize ``worker.crash``/``worker.hang`` faults into a schedule.

    Placement happens *up front*, not at run time, so the inline and
    multiprocessing fleet paths execute the exact same fault sequence:
    each batch's fate is a keyed draw on its ``seq`` (order-independent),
    and the chosen batch's first op is replaced by a live crash/hang op.
    Batches carrying an exploit op are exempt — a campaign that ate its
    own CVE injections could not assert the no-escape invariant.
    """
    from repro.faults.plan import FaultInjector

    injector = FaultInjector(plan.for_sites("worker.crash", "worker.hang"))
    out: List[RequestBatch] = []
    for batch in schedule:
        if (not injector.armed("worker.crash")
                and not injector.armed("worker.hang")):
            out.append(batch)
            continue
        if any(op.kind == "exploit" for op in batch.ops):
            out.append(batch)
            continue
        kind = None
        if injector.decide("worker.crash", batch.seq, batch.tenant):
            kind = "crash"
        elif injector.decide("worker.hang", batch.seq, batch.tenant):
            kind = "hang"
        if kind is None:
            out.append(batch)
            continue
        ops = (OpRequest(kind, 0, 0),) + batch.ops[1:]
        out.append(replace(batch, ops=ops))
    return out
