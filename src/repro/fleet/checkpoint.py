"""Checkpoint/restore for a :class:`GuardedInstance`.

A checkpoint is a JSON-serializable, content-digest-stamped envelope
holding everything a tenant's verdicts depend on:

* per-part emulated device state (the control-structure bytes the
  restricted-Python device logic runs over, including the funcptr
  fields), interpreter cycles/steps/flags, and halt/fault latches;
* sparse backing stores — disk-image chunks, guest-memory chunks and
  their DMA counters, NIC rx/tx queues, IRQ line state;
* per-part **shadow checker** state (the ES-Checker's private copy of
  the device control structure) and checker cycle counts;
* instance bookkeeping: op serial, spec epoch/digest, quarantine state.

``restore_instance(checkpoint_instance(x))`` yields an instance whose
subsequent verdicts are byte-identical to ``x``'s on the same op
stream — the property live migration is certified against.  Envelopes
are sealed with a sha256 over their canonical JSON; a tampered or
truncated envelope is rejected before any state is touched.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.checker import DegradationConfig, Mode
from repro.errors import FleetError
from repro.policy.model import canonical_json, policy_digest

#: Envelope format version; bumped on any layout change.
CHECKPOINT_FORMAT = 1


def seal(envelope: Dict[str, object]) -> Dict[str, object]:
    """(Re)stamp the envelope's content digest over every other key."""
    body = {k: v for k, v in envelope.items() if k != "digest"}
    envelope["digest"] = policy_digest(body)
    return envelope


def verify(envelope) -> None:
    """Reject a tampered, truncated, or wrong-format envelope."""
    if not isinstance(envelope, dict):
        raise FleetError("checkpoint envelope must be an object")
    if envelope.get("format") != CHECKPOINT_FORMAT:
        raise FleetError(
            f"unsupported checkpoint format {envelope.get('format')!r}")
    body = {k: v for k, v in envelope.items() if k != "digest"}
    if envelope.get("digest") != policy_digest(body):
        raise FleetError("checkpoint envelope fails its content-digest "
                         "check (tampered or truncated)")


def envelope_bytes(envelope: Dict[str, object]) -> int:
    """Transfer size of the sealed envelope (canonical encoding)."""
    return len(canonical_json(envelope).encode())


def _sparse_obj(store) -> Dict[str, object]:
    return {"size": store.size,
            "chunks": {str(index): bytes(chunk).hex()
                       for index, chunk in sorted(store._chunks.items())}}


def _sparse_restore(store, obj) -> None:
    store.size = int(obj["size"])
    store._chunks = {int(index): bytearray(bytes.fromhex(data))
                     for index, data in obj["chunks"].items()}


def _device_obj(device, vm) -> Dict[str, object]:
    machine = device.machine
    out: Dict[str, object] = {
        "state": bytes(machine.state.data).hex(),
        "cycles": machine.cycles,
        "steps": machine.steps,
        "flags": {"overflow": machine.flags.overflow,
                  "last_store_field": machine.flags.last_store_field},
        "halted": device.halted,
        "fault": str(device.fault) if device.fault is not None else None,
    }
    disk = getattr(device, "disk", None)
    if disk is not None:
        out["disk"] = {"store": _sparse_obj(disk._store),
                       "size": disk.size,
                       "reads": disk.reads, "writes": disk.writes}
    net = getattr(device, "net", None)
    if net is not None:
        out["net"] = {
            "rx": [[frame.payload.hex(), frame.timestamp]
                   for frame in net.rx_queue],
            "tx": [[frame.payload.hex(), frame.timestamp]
                   for frame in net.tx_frames],
            "tx_bytes": net.tx_bytes, "rx_bytes": net.rx_bytes}
    irq = getattr(device, "irq_line", None)
    if irq is not None:
        out["irq"] = {"level": irq.level, "raise_count": irq.raise_count}
    memory = getattr(device, "memory", None)
    if memory is not None and memory is not vm.memory:
        # Non-DMA device with a private guest-memory object (DMA devices
        # share vm.memory, captured once at the VM level).
        out["memory"] = {"store": _sparse_obj(memory._store),
                         "size": memory.size,
                         "dma_reads": memory.dma_reads,
                         "dma_writes": memory.dma_writes}
    return out


def _device_restore(device, vm, obj) -> None:
    machine = device.machine
    machine.state.data[:] = bytes.fromhex(obj["state"])
    machine.cycles = obj["cycles"]
    machine.steps = obj["steps"]
    machine.flags.overflow = obj["flags"]["overflow"]
    machine.flags.last_store_field = obj["flags"]["last_store_field"]
    device.halted = obj["halted"]
    device.fault = obj["fault"]
    if "disk" in obj:
        disk = device.disk
        _sparse_restore(disk._store, obj["disk"]["store"])
        disk.size = obj["disk"]["size"]
        disk.reads = obj["disk"]["reads"]
        disk.writes = obj["disk"]["writes"]
    if "net" in obj:
        from collections import deque
        from repro.devices.backends import NetFrame
        net = device.net
        net.rx_queue = deque(
            NetFrame(bytes.fromhex(payload), ts)
            for payload, ts in obj["net"]["rx"])
        net.tx_frames = [NetFrame(bytes.fromhex(payload), ts)
                         for payload, ts in obj["net"]["tx"]]
        net.tx_bytes = obj["net"]["tx_bytes"]
        net.rx_bytes = obj["net"]["rx_bytes"]
    if "irq" in obj:
        device.irq_line.level = obj["irq"]["level"]
        device.irq_line.raise_count = obj["irq"]["raise_count"]
    if "memory" in obj:
        memory = device.memory
        _sparse_restore(memory._store, obj["memory"]["store"])
        memory.size = obj["memory"]["size"]
        memory.dma_reads = obj["memory"]["dma_reads"]
        memory.dma_writes = obj["memory"]["dma_writes"]


def checkpoint_instance(instance) -> Dict[str, object]:
    """Capture a sealed, JSON-serializable checkpoint of *instance*."""
    vm = instance.vm
    envelope: Dict[str, object] = {
        "format": CHECKPOINT_FORMAT,
        "tenant": instance.tenant,
        "device": instance.device_name,
        "qemu_version": instance.qemu_version,
        "mode": instance.mode.value,
        "backend": instance.backend,
        "batch_rounds": instance.batch_rounds,
        "spec_epoch": instance.spec_epoch,
        "spec_digest": instance.spec_digest,
        "op_serial": instance._op_serial,
        "quarantined": instance.quarantined,
        "quarantine_reason": instance.quarantine_reason,
        "vm": {
            "memory": {"store": _sparse_obj(vm.memory._store),
                       "size": vm.memory.size,
                       "dma_reads": vm.memory.dma_reads,
                       "dma_writes": vm.memory.dma_writes},
            "stats": {"io_rounds": vm.stats.io_rounds,
                      "vmexit_cycles": vm.stats.vmexit_cycles,
                      "device_cycles": vm.stats.device_cycles,
                      "checker_cycles": vm.stats.checker_cycles},
        },
        "devices": {part: _device_obj(device, vm)
                    for part, device in sorted(vm.devices.items())},
        "checkers": {
            part: {
                "state": bytes(att.checker.device_state.memory.data).hex(),
                "cycles": att.checker.cycles,
                "checked_rounds": att.checked_rounds,
            }
            for part, att in sorted(instance.attachments.items())},
    }
    return seal(envelope)


def restore_instance(envelope, spec, *,
                     degradation: Optional[DegradationConfig] = None,
                     injector=None):
    """Rebuild a :class:`GuardedInstance` from a sealed checkpoint.

    The instance skeleton (VM, device, driver, deployed checkers) is
    rebuilt from the profile — drivers are stateless, so bring-up needs
    no replay — and the serialized state is overlaid on top: device
    control-structure bytes (funcptr wiring included, since ``bind_externs``
    stores function addresses as field values), backing stores, and the
    checkers' shadow state.  *spec* must be the same spec (or per-part
    spec dict) the checkpointed instance ran under — the worker resolves
    it from the envelope's ``spec_digest`` via the shared registry.
    """
    from repro.fleet.instance import GuardedInstance

    verify(envelope)
    instance = GuardedInstance(
        envelope["tenant"], envelope["device"],
        envelope["qemu_version"], spec,
        mode=Mode(envelope["mode"]), backend=envelope["backend"],
        degradation=degradation, injector=injector,
        batch_rounds=envelope.get("batch_rounds", 0))
    vm = instance.vm
    mem = envelope["vm"]["memory"]
    _sparse_restore(vm.memory._store, mem["store"])
    vm.memory.size = mem["size"]
    vm.memory.dma_reads = mem["dma_reads"]
    vm.memory.dma_writes = mem["dma_writes"]
    stats = envelope["vm"]["stats"]
    vm.stats.io_rounds = stats["io_rounds"]
    vm.stats.vmexit_cycles = stats["vmexit_cycles"]
    vm.stats.device_cycles = stats["device_cycles"]
    vm.stats.checker_cycles = stats["checker_cycles"]
    for part, obj in envelope["devices"].items():
        device = vm.devices.get(part)
        if device is None:
            raise FleetError(f"checkpoint names unknown device part "
                             f"{part!r}")
        _device_restore(device, vm, obj)
    for part, obj in envelope["checkers"].items():
        attachment = instance.attachments.get(part)
        if attachment is None:
            raise FleetError(f"checkpoint names unknown checker part "
                             f"{part!r}")
        attachment.checker.device_state.memory.data[:] = \
            bytes.fromhex(obj["state"])
        attachment.checker.cycles = obj["cycles"]
        attachment.checked_rounds = obj["checked_rounds"]
    instance.spec_epoch = envelope["spec_epoch"]
    instance.spec_digest = envelope["spec_digest"]
    instance._op_serial = envelope["op_serial"]
    instance.quarantined = envelope["quarantined"]
    instance.quarantine_reason = envelope["quarantine_reason"]
    return instance
