"""One guarded tenant: a guest VM + device + deployed ES-Checker.

A :class:`GuardedInstance` is the fleet's unit of isolation.  It owns a
private :class:`~repro.vm.machine.GuestVM` with the tenant's device
attached and an execution specification deployed in front of it, and it
applies :class:`~repro.fleet.loadgen.OpRequest` records one at a time.
A SEDSpec detection *quarantines* the instance — the fleet analogue of
the paper's targeted termination: the offending tenant is fenced off, its
`CheckReport` recorded, and every other tenant keeps being served.

Quarantine is a **security** outcome.  The instance also recognizes
**infrastructure** outcomes — the enforcement machinery itself failed
(trace loss, decode failure, a transient interpreter fault) — and routes
them through a :class:`~repro.checker.DegradationConfig` instead: the op
degrades to an explicit ``trace_gap`` status (fail-closed), is allowed
unvetted with the gap stamped on its report (fail-open), or is retried
(transient faults clear on a keyed re-attempt).  An infra outcome never
quarantines the tenant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.checker import (
    CheckReport, DEFAULT_DEGRADATION, DegradationConfig, DegradationPolicy,
    Mode, gap_report,
)
from repro.core import deploy
from repro.errors import DecodeError, DeviceFault, InfraError, TraceError
from repro.fleet.loadgen import OpRequest
from repro.vm.machine import SEDSpecHalt
from repro.spec import ExecutionSpec


def portable_report(report: CheckReport) -> CheckReport:
    """A copy safe to pickle across process boundaries: the lazy
    final-state *source* is a closure over live checker state, so
    materialize it once (detections are rare) and drop the binding."""
    return dataclasses.replace(report, _final_state=dict(report.final_state),
                               _final_state_source=None)


@dataclass
class OpOutcome:
    """What one applied request did to the instance."""

    #: "ok" | "detected" | "fault" | "rejected" | "trace_gap"
    status: str
    cycles: int = 0
    io_rounds: int = 0
    report: Optional[CheckReport] = None
    detail: str = ""
    quarantined: bool = False   # did *this* op trip the quarantine


class GuardedInstance:
    """Guards one tenant.  ``device_name`` may be composite
    (``"virtio-net+virtio-blk"``): the tenant then owns one guest VM with
    every part attached, a per-part spec deployed in front of each, and a
    *shared* quarantine verdict — a detection on any part fences the whole
    tenant, exactly as terminating the QEMU process would."""

    def __init__(self, tenant: str, device_name: str, qemu_version: str,
                 spec, mode: Mode = Mode.PROTECTION,
                 backend: str = "compiled",
                 degradation: Optional[DegradationConfig] = None,
                 injector=None, batch_rounds: int = 0):
        from repro.workloads.profiles import profile

        self.tenant = tenant
        self.device_name = device_name
        self.qemu_version = qemu_version
        self.mode = mode
        self.backend = backend
        self.degradation = degradation or DEFAULT_DEGRADATION
        self.injector = injector
        self.batch_rounds = batch_rounds
        #: which spec generation is deployed (hot-reload bookkeeping);
        #: epoch 0 is whatever the registry served at build time
        self.spec_epoch = 0
        self.spec_digest = ""
        self.profile = profile(device_name)
        self.vm, self.device = self.profile.make_vm(qemu_version,
                                                    backend=backend)
        specs = (spec if isinstance(spec, dict)
                 else {self.device.NAME: spec})
        self.attachments = {
            part: deploy(self.vm, self.vm.devices[part], part_spec,
                         mode=mode, backend=backend,
                         batch_rounds=batch_rounds)
            for part, part_spec in specs.items()}
        self.attachment = self.attachments[self.device.NAME]
        self.driver = self.profile.make_driver(self.vm)
        self.profile.prepare(self.vm, self.driver)
        self.quarantined = False
        self.quarantine_reason = ""
        self.reports: List[CheckReport] = []
        self._op_serial = 0
        self._tracer = None
        if injector is not None and any(
                injector.armed(s) for s in
                ("ipt.drop", "ipt.corrupt", "ipt.overflow")):
            # Verification tracer: captures the op's real packet stream so
            # the ipt fault arms exercise the genuine decode/resync path.
            from repro.ipt.tracer import IPTTracer
            self._tracer = IPTTracer(injector=injector)
            self.device.machine.add_sink(self._tracer)

    def quarantine(self, reason: str) -> None:
        self.quarantined = True
        self.quarantine_reason = reason

    def reload_spec(self, spec: ExecutionSpec, epoch: int,
                    digest: str = "") -> None:
        """Swap in a new spec generation between ops.

        ``apply`` is synchronous, so calling this between ops makes the
        swap atomic per instance: every round either ran wholly under
        the old spec or wholly under the new one.  The re-deploy
        replaces the VM's attachment and boot-syncs the fresh checker's
        shadow state from the *live* device state, so mid-stream guest
        state (an open drive, a pending command) survives the swap.
        The guest VM, driver, recorded reports and quarantine state are
        untouched.
        """
        specs = (spec if isinstance(spec, dict)
                 else {self.device.NAME: spec})
        for part, part_spec in specs.items():
            self.attachments[part] = deploy(
                self.vm, self.vm.devices[part], part_spec,
                mode=self.mode, backend=self.backend,
                batch_rounds=self.batch_rounds)
        self.attachment = self.attachments[self.device.NAME]
        self.spec_epoch = epoch
        self.spec_digest = digest

    def _record(self, report: CheckReport) -> CheckReport:
        """Stamp the spec generation the round ran under and file it."""
        report.spec_epoch = self.spec_epoch
        self.reports.append(report)
        return report

    def _warning_counts(self) -> dict:
        return {part: len(a.warnings)
                for part, a in self.attachments.items()}

    def _new_warning(self, before: dict) -> Optional[CheckReport]:
        for part, attachment in self.attachments.items():
            if len(attachment.warnings) > before.get(part, 0):
                return attachment.warnings[-1]
        return None

    def apply(self, op: OpRequest) -> OpOutcome:
        if self.quarantined:
            return OpOutcome("rejected", detail=self.quarantine_reason)
        self._op_serial += 1
        op_key = f"{self.tenant}:{self._op_serial}:{op.kind}:{op.index}"
        gap = self._pre_execution_gap(op, op_key)
        if gap is not None:
            return gap
        before = self.vm.stats.snapshot()
        warned = self._warning_counts()
        if self._tracer is not None:
            self._tracer.clear()
        try:
            self._run(op)
            # Credit-batch discipline: the op boundary is a flush point,
            # so every round this op executed on credit is vetted before
            # the outcome is reported.
            self.vm.flush_batches()
        except SEDSpecHalt as halt:
            return self._detected(halt, before)
        except DeviceFault as fault:
            try:
                # Detection takes precedence over the fault outcome:
                # rounds credited before the crash are vetted first.
                self.vm.flush_batches()
            except SEDSpecHalt as halt:
                return self._detected(halt, before)
            return self._outcome("fault", before,
                                 detail=f"{fault.kind}: {fault}")
        gap = self._post_execution_gap(op_key, before)
        if gap is not None:
            return gap
        warning = self._new_warning(warned)
        if warning is not None:
            # Enhancement mode warned-and-allowed: a detection on the
            # record, but the round completed and the tenant stays live.
            report = self._record(portable_report(warning))
            return self._outcome("detected", before, report=report,
                                 detail=str(report.first_anomaly()))
        return self._outcome("ok", before)

    def _detected(self, halt: SEDSpecHalt, before) -> OpOutcome:
        report = self._record(portable_report(halt.report))
        self.quarantine(str(halt.report.first_anomaly()))
        return self._outcome("detected", before, report=report,
                             detail=self.quarantine_reason,
                             quarantined=True)

    # -- fault arms ----------------------------------------------------------

    def _pre_execution_gap(self, op: OpRequest,
                           op_key: str) -> Optional[OpOutcome]:
        """The ``interp.*`` arms: the checker's execution engine fails
        *before* the round runs (so nothing — device or shadow state — has
        advanced, and a retry genuinely replays from scratch)."""
        inj = self.injector
        if inj is None or not (inj.armed("interp.step")
                               or inj.armed("interp.stall")):
            return None
        config = self.degradation
        last = ""
        for attempt in range(config.attempts):
            try:
                self._draw_interp_fault(f"{op_key}:{attempt}")
            except InfraError as exc:
                last = f"{type(exc).__name__}: {exc}"
                continue
            return None     # engine healthy (or the transient cleared)
        if config.policy is DegradationPolicy.FAIL_OPEN:
            # Checker machinery is down but policy says serve anyway:
            # run the round unguarded, then re-align the shadow state so
            # the blind spot does not cascade into false positives.
            return self._run_unguarded(op, op_key, last)
        report = self._record(gap_report(op_key, config, last))
        return OpOutcome("trace_gap", report=report, detail=last)

    def _draw_interp_fault(self, key: str) -> None:
        inj = self.injector
        spec = inj.decide("interp.step", self._op_serial, key)
        if spec is not None:
            raise InfraError("transient interpreter step fault",
                             kind="step")
        spec = inj.decide("interp.stall", self._op_serial, key)
        if spec is not None:
            raise InfraError(
                f"checker round stalled past deadline ({spec.arg}ms)",
                kind="stall")

    def _run_unguarded(self, op: OpRequest, op_key: str,
                       reason: str) -> OpOutcome:
        """Fail-open service: detach the checker for this op, execute,
        re-attach, resync the shadow device state."""
        before = self.vm.stats.snapshot()
        detached = {part: self.vm.attachments.pop(part)
                    for part in self.attachments}
        try:
            self._run(op)
        except DeviceFault as fault:
            return self._outcome("fault", before,
                                 detail=f"{fault.kind}: {fault}")
        finally:
            for part, attachment in detached.items():
                self.vm.attachments[part] = attachment
                attachment.checker.resync(self.vm.devices[part].state)
        report = self._record(gap_report(op_key, self.degradation,
                                         reason))
        return self._outcome("ok", before, report=report, detail=reason)

    def _post_execution_gap(self, op_key: str,
                            before) -> Optional[OpOutcome]:
        """The ``ipt.*`` arms: the op executed and was vetted, but the
        trace that vouches for it may be damaged.  Verification replays
        (decode attempts) are retryable; capture loss is not."""
        if self._tracer is None:
            return None
        config = self.degradation
        last = ""
        for attempt in range(config.attempts):
            try:
                self._verify_trace(f"{op_key}:{attempt}")
            except (DecodeError, TraceError) as exc:
                last = f"{type(exc).__name__}: {exc}"
                continue
            return None
        report = self._record(gap_report(op_key, config, last))
        if config.policy is DegradationPolicy.FAIL_OPEN:
            return self._outcome("ok", before, report=report, detail=last)
        return self._outcome("trace_gap", before, report=report,
                             detail=last)

    def _verify_trace(self, key: str) -> None:
        from repro.faults.plan import corrupt_bytes
        from repro.ipt.packets import decode_resilient

        tracer = self._tracer
        if tracer.dropped:
            raise TraceError(
                f"{tracer.dropped} packet(s) lost in capture "
                f"({tracer.overflows} overflow(s))")
        raw = corrupt_bytes(tracer.raw(), self.injector,
                            round_=self._op_serial, key=key)
        parsed = decode_resilient(raw)
        if parsed.gaps:
            reasons = ",".join(sorted({g.reason for g in parsed.gaps}))
            raise DecodeError(
                f"trace loss ({reasons}): {parsed.lost_bytes()} byte(s) "
                f"in {len(parsed.gaps)} gap(s)",
                offset=parsed.gaps[0].start, packets=parsed.packets)

    # -- execution -----------------------------------------------------------

    def _run(self, op: OpRequest) -> None:
        import random

        if op.kind == "exploit":
            from repro.exploits.corpus import resolve_attack
            attack = resolve_attack(op.cve)
            # Composite tenants: the PoC targets exactly one of the
            # tenant's devices; the quarantine verdict is shared.
            target = self.vm.devices.get(attack.device, self.device)
            attack.run(self.vm, target)
        elif op.kind == "common":
            fn = self.profile.common_ops[op.index
                                         % len(self.profile.common_ops)]
            fn(self.vm, self.driver, random.Random(op.seed))
        elif op.kind == "rare":
            fn = self.profile.rare_ops[op.index
                                       % len(self.profile.rare_ops)]
            fn(self.vm, self.driver, random.Random(op.seed))
        elif op.kind in ("crash", "hang"):
            pass                # tombstoned fault op: already handled
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")

    def _outcome(self, status: str, before, report=None, detail: str = "",
                 quarantined: bool = False) -> OpOutcome:
        delta = self.vm.stats.delta(before)
        return OpOutcome(status, delta.total_cycles, delta.io_rounds,
                         report=report, detail=detail,
                         quarantined=quarantined)
