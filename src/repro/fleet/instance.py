"""One guarded tenant: a guest VM + device + deployed ES-Checker.

A :class:`GuardedInstance` is the fleet's unit of isolation.  It owns a
private :class:`~repro.vm.machine.GuestVM` with the tenant's device
attached and an execution specification deployed in front of it, and it
applies :class:`~repro.fleet.loadgen.OpRequest` records one at a time.
A SEDSpec detection *quarantines* the instance — the fleet analogue of
the paper's targeted termination: the offending tenant is fenced off, its
`CheckReport` recorded, and every other tenant keeps being served.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.checker import CheckReport, Mode
from repro.core import deploy
from repro.errors import DeviceFault
from repro.exploits import exploit_by_cve
from repro.fleet.loadgen import OpRequest
from repro.vm.machine import SEDSpecHalt
from repro.spec import ExecutionSpec


def portable_report(report: CheckReport) -> CheckReport:
    """A copy safe to pickle across process boundaries: the lazy
    final-state *source* is a closure over live checker state, so
    materialize it once (detections are rare) and drop the binding."""
    return dataclasses.replace(report, _final_state=dict(report.final_state),
                               _final_state_source=None)


@dataclass
class OpOutcome:
    """What one applied request did to the instance."""

    status: str                 # "ok" | "detected" | "fault" | "rejected"
    cycles: int = 0
    io_rounds: int = 0
    report: Optional[CheckReport] = None
    detail: str = ""
    quarantined: bool = False   # did *this* op trip the quarantine


class GuardedInstance:
    def __init__(self, tenant: str, device_name: str, qemu_version: str,
                 spec: ExecutionSpec, mode: Mode = Mode.PROTECTION,
                 backend: str = "compiled"):
        from repro.workloads.profiles import PROFILES

        self.tenant = tenant
        self.device_name = device_name
        self.qemu_version = qemu_version
        self.mode = mode
        self.profile = PROFILES[device_name]
        self.vm, self.device = self.profile.make_vm(qemu_version,
                                                    backend=backend)
        self.attachment = deploy(self.vm, self.device, spec, mode=mode,
                                 backend=backend)
        self.driver = self.profile.make_driver(self.vm)
        self.profile.prepare(self.vm, self.driver)
        self.quarantined = False
        self.quarantine_reason = ""
        self.reports: List[CheckReport] = []

    def quarantine(self, reason: str) -> None:
        self.quarantined = True
        self.quarantine_reason = reason

    def apply(self, op: OpRequest) -> OpOutcome:
        if self.quarantined:
            return OpOutcome("rejected", detail=self.quarantine_reason)
        before = self.vm.stats.snapshot()
        warned = len(self.attachment.warnings)
        try:
            self._run(op)
        except SEDSpecHalt as halt:
            report = portable_report(halt.report)
            self.reports.append(report)
            self.quarantine(str(halt.report.first_anomaly()))
            return self._outcome("detected", before, report=report,
                                 detail=self.quarantine_reason,
                                 quarantined=True)
        except DeviceFault as fault:
            return self._outcome("fault", before,
                                 detail=f"{fault.kind}: {fault}")
        if len(self.attachment.warnings) > warned:
            # Enhancement mode warned-and-allowed: a detection on the
            # record, but the round completed and the tenant stays live.
            report = portable_report(self.attachment.warnings[-1])
            self.reports.append(report)
            return self._outcome("detected", before, report=report,
                                 detail=str(report.first_anomaly()))
        return self._outcome("ok", before)

    def _run(self, op: OpRequest) -> None:
        import random

        if op.kind == "exploit":
            exploit_by_cve(op.cve).run(self.vm, self.device)
        elif op.kind == "common":
            fn = self.profile.common_ops[op.index
                                         % len(self.profile.common_ops)]
            fn(self.vm, self.driver, random.Random(op.seed))
        elif op.kind == "rare":
            fn = self.profile.rare_ops[op.index
                                       % len(self.profile.rare_ops)]
            fn(self.vm, self.driver, random.Random(op.seed))
        elif op.kind == "crash":
            pass                # tombstoned crash op: already handled
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")

    def _outcome(self, status: str, before, report=None, detail: str = "",
                 quarantined: bool = False) -> OpOutcome:
        delta = self.vm.stats.delta(before)
        return OpOutcome(status, delta.total_cycles, delta.io_rounds,
                         report=report, detail=detail,
                         quarantined=quarantined)
