"""Trace persistence: PT packet streams and decoded rounds on disk.

The paper's pipeline is file-based (trace capture on one run, analysis
later); this module gives the packet stream a durable container with a
small header (magic, version, device, code range) so decoders can check
they are replaying against the right build.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TraceError, TruncatedTraceError
from repro.ipt.packets import Packet, decode, encode

MAGIC = b"SEDT"
VERSION = 1
#: magic (4) + version/header_len framing (6)
_HEADER_FRAME_END = 10


@dataclass
class TraceFile:
    """A captured trace: metadata + the raw packet bytes."""

    device: str
    code_range: Tuple[int, int]
    packets: List[Packet]
    qemu_version: str = ""

    def save(self, path: str) -> None:
        header = json.dumps({
            "device": self.device,
            "code_range": list(self.code_range),
            "qemu_version": self.qemu_version,
        }).encode()
        payload = encode(self.packets)
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<HI", VERSION, len(header)))
            handle.write(header)
            handle.write(struct.pack("<I", len(payload)))
            handle.write(payload)

    @classmethod
    def load(cls, path: str) -> "TraceFile":
        with open(path, "rb") as handle:
            blob = handle.read()
        if blob[:4] != MAGIC:
            raise TraceError(f"{path}: not a SEDSpec trace file")
        if len(blob) < _HEADER_FRAME_END:
            raise TruncatedTraceError(
                f"{path}: file ends inside the version/header framing",
                offset=len(blob))
        (version, header_len) = struct.unpack_from("<HI", blob, 4)
        if version != VERSION:
            raise TraceError(f"{path}: unsupported trace version "
                             f"{version}")
        pos = _HEADER_FRAME_END
        if pos + header_len > len(blob):
            raise TruncatedTraceError(
                f"{path}: header claims {header_len} bytes but the file "
                f"ends first", offset=len(blob))
        try:
            header = json.loads(blob[pos:pos + header_len].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceError(
                f"{path}: corrupt trace header: {exc}") from exc
        pos += header_len
        if pos + 4 > len(blob):
            raise TruncatedTraceError(
                f"{path}: file ends inside the payload length framing",
                offset=len(blob))
        (payload_len,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        payload = blob[pos:pos + payload_len]
        if len(payload) != payload_len:
            raise TruncatedTraceError(
                f"{path}: payload claims {payload_len} bytes but the "
                f"file ends first", offset=len(blob))
        return cls(device=header["device"],
                   code_range=tuple(header["code_range"]),
                   packets=decode(payload),
                   qemu_version=header.get("qemu_version", ""))

    def check_compatible(self, program) -> None:
        """Refuse to decode a trace against a different build."""
        if tuple(program.code_range()) != tuple(self.code_range):
            raise TraceError(
                "trace was captured against a different build "
                f"(code range {self.code_range} vs "
                f"{program.code_range()})")
