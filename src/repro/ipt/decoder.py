"""Packet decoder: replays a PT packet stream against the static program.

A PT decoder reconstructs the exact path by walking the binary from the PGE
address and consuming TNT bits at conditional branches / TIP addresses at
indirect transfers; direct jumps, calls, and returns are followed
statically.  This module does the same over the IR program and yields, per
I/O round, the ordered list of executed block addresses plus the resolved
indirect targets — the inputs to ITC-CFG construction.

Two entry points share the walk:

* :meth:`Decoder.decode_stream` consumes already-parsed packet objects
  (the in-process tracer hands its packet list straight over);
* :meth:`Decoder.decode_bytes` consumes the raw wire bytes in a single
  pass — one index cursor over a ``memoryview``, TNT bits unpacked and
  TIP addresses read in place, rounds segmented inline.  No intermediate
  packet list is built; packet *objects* are constructed only for
  anomalies (FUP/OVF and synthesized loss markers) so the
  :class:`DecodeResult` report stays inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import TraceError
from repro.ir import (
    Branch, Call, Goto, ICall, Program, Return, Switch,
)
from repro.ipt.packets import (
    _MAGIC, PSB_PATTERN, TNT_CAPACITY, DecodeResult, Fup, Ovf, Packet,
    Tip, TipPgd, TipPge, Tnt, TraceGap, decode_resilient, iter_rounds,
)


@dataclass
class DecodedRound:
    """Reconstruction of one I/O round."""

    entry_address: int
    block_addresses: List[int] = field(default_factory=list)
    #: (source block address, target address, kind) for each indirect hop.
    indirect_edges: List[Tuple[int, int, str]] = field(default_factory=list)
    #: True if the round ended with a FUP (device fault mid-round).
    faulted: bool = False
    #: True if an OVF fell inside the round: packets were lost (buffer
    #: overflow or corruption resync) and the reconstructed path is only
    #: the trustworthy prefix, not the whole round.
    trace_gap: bool = False

    def edges(self) -> List[Tuple[int, int]]:
        """Consecutive-block edge list of the reconstructed path."""
        return list(zip(self.block_addresses, self.block_addresses[1:]))


class _BitFeed:
    """Sequential consumer of TNT bits / TIP addresses within one round."""

    def __init__(self, tnt: List[bool], tips: List[int],
                 faulted: bool, gapped: bool):
        self._tnt = tnt
        self._tips = tips
        self.faulted = faulted
        self.gapped = gapped
        self._tnt_pos = 0
        self._tip_pos = 0

    @classmethod
    def from_packets(cls, packets: List[Packet]) -> "_BitFeed":
        tnt: List[bool] = []
        tips: List[int] = []
        faulted = False
        gapped = False
        for pkt in packets:
            if gapped:
                # Nothing after an OVF is trustworthy within this round:
                # the lost packets make later TNT/TIP alignment unknown.
                break
            if isinstance(pkt, Tnt):
                tnt.extend(pkt.bits)
            elif isinstance(pkt, Tip):
                tips.append(pkt.ip)
            elif isinstance(pkt, Fup):
                faulted = True
            elif isinstance(pkt, Ovf):
                gapped = True
        return cls(tnt, tips, faulted, gapped)

    def next_bit(self) -> Optional[bool]:
        if self._tnt_pos >= len(self._tnt):
            return None
        bit = self._tnt[self._tnt_pos]
        self._tnt_pos += 1
        return bit

    def next_tip(self) -> Optional[int]:
        if self._tip_pos >= len(self._tips):
            return None
        ip = self._tips[self._tip_pos]
        self._tip_pos += 1
        return ip

    def exhausted(self) -> bool:
        return (self._tnt_pos >= len(self._tnt)
                and self._tip_pos >= len(self._tips))


class Decoder:
    """Replays packet rounds against a frozen :class:`Program`."""

    def __init__(self, program: Program, max_blocks: int = 1_000_000,
                 recorder=None):
        self.program = program
        self.max_blocks = max_blocks
        self._telemetry = None
        if recorder is not None:
            from repro.telemetry.instruments import PacketTelemetry
            self._telemetry = PacketTelemetry(recorder, "decoded")

    def decode_stream(self, packets: Iterable[Packet]) -> List[DecodedRound]:
        return [self.decode_round(chunk) for chunk in iter_rounds(packets)]

    def decode_bytes(self, data: bytes
                     ) -> Tuple[List[DecodedRound], DecodeResult]:
        """Resilient bytes-level entry: one pass over the raw stream.

        Materializing wrapper over :meth:`iter_decode_bytes` — see there
        for the decode semantics.  Returns the full round list plus the
        :class:`DecodeResult` report.
        """
        result = DecodeResult()
        rounds = list(self.iter_decode_bytes(data, result))
        return rounds, result

    def iter_decode_bytes(self, data: bytes,
                          result: Optional[DecodeResult] = None
                          ) -> "Iterator[DecodedRound]":
        """Streaming resilient bytes-level entry: one pass, one round at
        a time.

        A single index cursor moves over a ``memoryview`` of *data*;
        TNT bits are unpacked and TIP/PGE/PGD addresses read in place,
        and each round is **yielded as soon as the cursor passes its
        closing boundary packet** — no intermediate list of
        :class:`DecodedRound` objects is held, so a consumer such as the
        batched checker can stream round boundaries straight into its
        walk.  Every parse failure resynchronizes at the next PSB
        pattern exactly like :func:`decode_resilient` (same
        :class:`TraceGap` spans and reasons).  Rounds overlapping a loss
        region carry ``trace_gap=True``; nothing raises on corrupt
        input.

        Pass a :class:`DecodeResult` as *result* to collect the gaps
        plus only the *anomaly* packets (FUP, on-the-wire OVF, and the
        OVF markers synthesized at loss points) — the common-path
        packets are consumed in place and never materialized.  The
        report is filled incrementally as the generator advances and is
        complete once it is exhausted.
        """
        mv = memoryview(data)
        if result is None:
            result = DecodeResult()
        telemetry = self._telemetry

        # Current-round accumulators (None entry_address = not inside).
        cur: Optional[DecodedRound] = None
        tnt: List[bool] = []
        tips: List[int] = []
        faulted = False
        gapped = False

        def finish() -> DecodedRound:
            nonlocal cur
            round_ = cur
            cur = None
            round_.faulted = faulted
            round_.trace_gap = gapped
            self._walk(round_.entry_address,
                       _BitFeed(tnt, tips, faulted, gapped), round_)
            if telemetry is not None:
                telemetry.rounds.inc()
                if round_.faulted:
                    telemetry.faulted.inc()
            return round_

        pos = 0
        size = len(data)
        magic_psb = _MAGIC["PSB"]
        magic_pge = _MAGIC["PGE"]
        magic_pgd = _MAGIC["PGD"]
        magic_tnt = _MAGIC["TNT"]
        magic_tip = _MAGIC["TIP"]
        magic_fup = _MAGIC["FUP"]
        magic_ovf = _MAGIC["OVF"]
        psb_len = len(PSB_PATTERN)
        ifb = int.from_bytes
        while pos < size:
            start = pos
            magic = data[pos]
            pos += 1
            fail_reason = None
            if magic == magic_tnt:
                if pos + 2 > size:
                    fail_reason = "truncated"
                else:
                    count = data[pos]
                    packed = data[pos + 1]
                    pos += 2
                    if not 0 < count <= TNT_CAPACITY:
                        fail_reason = "corruption"
                    else:
                        if telemetry is not None and cur is not None:
                            telemetry.count_kind("Tnt")
                        if cur is not None and not gapped:
                            for i in range(count):
                                tnt.append(bool(packed >> i & 1))
            elif magic == magic_psb:
                end = start + psb_len
                if data[start:end] != PSB_PATTERN:
                    fail_reason = ("truncated" if end > size
                                   else "corruption")
                else:
                    pos = end
                    if telemetry is not None and cur is not None:
                        telemetry.count_kind("PSB")
            elif magic == magic_ovf:
                # On-the-wire overflow: the tracer itself lost packets.
                result.packets.append(Ovf())
                if telemetry is not None and cur is not None:
                    telemetry.count_kind("Ovf")
                if cur is not None:
                    gapped = True
            elif magic in (magic_pge, magic_pgd, magic_tip, magic_fup):
                if pos + 8 > size:
                    fail_reason = "truncated"
                else:
                    ip = ifb(mv[pos:pos + 8], "little")
                    pos += 8
                    if magic == magic_pge:
                        # A PGE inside a round abandons the partial
                        # round, exactly like iter_rounds restarting
                        # its current chunk.
                        cur = DecodedRound(entry_address=ip)
                        tnt = []
                        tips = []
                        faulted = False
                        gapped = False
                        if telemetry is not None:
                            telemetry.count_kind("TipPge")
                    elif magic == magic_pgd:
                        if cur is not None:
                            if telemetry is not None:
                                telemetry.count_kind("TipPgd")
                            yield finish()
                    elif magic == magic_tip:
                        if telemetry is not None and cur is not None:
                            telemetry.count_kind("Tip")
                        if cur is not None and not gapped:
                            tips.append(ip)
                    else:
                        result.packets.append(Fup(ip))
                        if telemetry is not None and cur is not None:
                            telemetry.count_kind("Fup")
                        if cur is not None and not gapped:
                            faulted = True
            else:
                fail_reason = "corruption"
            if fail_reason is not None:
                # Same resynchronization decode_resilient performs: skip
                # at least one byte (the failing offset may hold a
                # corrupted PSB magic), scan for the next sync pattern.
                sync = data.find(PSB_PATTERN, start + 1)
                end = sync if sync >= 0 else size
                result.gaps.append(TraceGap(start, end, fail_reason))
                result.packets.append(Ovf())
                if telemetry is not None and cur is not None:
                    telemetry.count_kind("Ovf")
                if cur is not None:
                    gapped = True
                if sync < 0:
                    break
                pos = sync
        if cur is not None:
            # Trailing partial round (device faulted mid-I/O).
            yield finish()

    def decode_round(self, packets: List[Packet]) -> DecodedRound:
        pge = next((p for p in packets if isinstance(p, TipPge)), None)
        if pge is None:
            raise TraceError("round has no TIP.PGE packet")
        feed = _BitFeed.from_packets(packets)
        round_ = DecodedRound(entry_address=pge.ip, faulted=feed.faulted,
                              trace_gap=feed.gapped)
        self._walk(pge.ip, feed, round_)
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.rounds.inc()
            if round_.faulted:
                telemetry.faulted.inc()
            for pkt in packets:
                telemetry.count(pkt)
        return round_

    # -- path reconstruction ------------------------------------------------

    def _walk(self, entry_addr: int, feed: _BitFeed,
              round_: DecodedRound) -> None:
        loc = self.program.addr_to_block.get(entry_addr)
        if loc is None:
            raise TraceError(f"PGE address {entry_addr:#x} is not a block")
        func_name, label = loc
        #: call stack of (func_name, continuation_label, ...)
        stack: List[Tuple[str, str]] = []
        steps = 0
        while True:
            steps += 1
            if steps > self.max_blocks:
                raise TraceError("decoder runaway (packet/program mismatch)")
            func = self.program.function(func_name)
            block = func.block(label)
            round_.block_addresses.append(block.address)
            term = block.terminator
            if isinstance(term, Goto):
                label = term.target
            elif isinstance(term, Branch):
                bit = feed.next_bit()
                if bit is None:
                    if (round_.faulted or round_.trace_gap
                            or feed.exhausted()):
                        return   # trace ended mid-path (fault/gap/trunc)
                    raise TraceError(
                        f"TNT underflow at {func_name}:{label}")
                label = term.taken if bit else term.not_taken
            elif isinstance(term, Switch):
                target_addr = feed.next_tip()
                if target_addr is None:
                    return
                round_.indirect_edges.append(
                    (block.address, target_addr, "switch"))
                target_loc = self.program.addr_to_block.get(target_addr)
                if target_loc is None or target_loc[0] != func_name:
                    raise TraceError(
                        f"switch TIP {target_addr:#x} leaves {func_name}")
                label = target_loc[1]
            elif isinstance(term, Call):
                stack.append((func_name, term.cont))
                func_name = term.func
                label = self.program.function(func_name).entry
            elif isinstance(term, ICall):
                target_addr = feed.next_tip()
                if target_addr is None:
                    return
                round_.indirect_edges.append(
                    (block.address, target_addr, "icall"))
                callee = self.program.addr_to_func.get(target_addr)
                if callee is None:
                    # Hijack to a wild address: the trace ends in a fault.
                    return
                stack.append((func_name, term.cont))
                func_name = callee
                label = self.program.function(callee).entry
            elif isinstance(term, Return):
                if not stack:
                    return   # top-level handler returned: round complete
                func_name, label = stack.pop()
            else:
                raise TraceError(
                    f"unknown terminator in {func_name}:{label}")
