"""Software Intel-PT analogue: packet stream, tracer sink, and decoder."""

from repro.ipt.packets import (
    PSB, PSB_PATTERN, TNT_CAPACITY, DecodeResult, Fup, Ovf, Packet, Tip,
    TipPgd, TipPge, Tnt, TraceGap, decode, decode_resilient, encode,
    iter_rounds, resync_offset,
)
from repro.ipt.tracer import PSB_PERIOD, FilterConfig, IPTTracer
from repro.ipt.decoder import DecodedRound, Decoder
from repro.ipt.storage import TraceFile

__all__ = [
    "PSB", "PSB_PATTERN", "TNT_CAPACITY", "DecodeResult", "Fup", "Ovf",
    "Packet", "Tip", "TipPgd", "TipPge", "Tnt", "TraceGap", "decode",
    "decode_resilient", "encode", "iter_rounds", "resync_offset",
    "PSB_PERIOD", "FilterConfig", "IPTTracer",
    "DecodedRound", "Decoder", "TraceFile",
]
