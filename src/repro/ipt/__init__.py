"""Software Intel-PT analogue: packet stream, tracer sink, and decoder."""

from repro.ipt.packets import (
    PSB, TNT_CAPACITY, Fup, Packet, Tip, TipPgd, TipPge, Tnt, decode,
    encode, iter_rounds,
)
from repro.ipt.tracer import PSB_PERIOD, FilterConfig, IPTTracer
from repro.ipt.decoder import DecodedRound, Decoder
from repro.ipt.storage import TraceFile

__all__ = [
    "PSB", "TNT_CAPACITY", "Fup", "Packet", "Tip", "TipPgd", "TipPge",
    "Tnt", "decode", "encode", "iter_rounds",
    "PSB_PERIOD", "FilterConfig", "IPTTracer",
    "DecodedRound", "Decoder", "TraceFile",
]
