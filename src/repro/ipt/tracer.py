"""The IPT module: configures filtering and records the packet stream.

Mirrors Section IV-A of the paper: tracing starts when the I/O data stream
enters the emulated device and stops when it exits; an address filter keeps
only the device's own code range (dropping shared-library and, by
construction, kernel control flow); the output is the raw packet buffer the
ITC-CFG builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.interp.sinks import TraceSink
from repro.ipt.packets import (
    PSB, Fup, Ovf, Packet, Tip, TipPgd, TipPge, Tnt, TNT_CAPACITY, encode,
)

#: Emit a PSB sync packet after this many packets, like periodic PSB+ in PT.
PSB_PERIOD = 256


@dataclass
class FilterConfig:
    """What the IPT module is configured to record.

    *code_ranges* is the list of [lo, hi) address windows that may appear in
    the trace (the paper computes the emulated device's code range from the
    process memory layout).  *trace_kernel* is off by default, matching the
    paper's "tracing of kernel space control flow is disabled".
    """

    code_ranges: List[Tuple[int, int]] = field(default_factory=list)
    trace_kernel: bool = False

    def allows(self, address: int) -> bool:
        if not self.code_ranges:
            return True
        return any(lo <= address < hi for lo, hi in self.code_ranges)


class IPTTracer(TraceSink):
    """Trace sink producing an IPT-style packet stream.

    Attach to a :class:`~repro.interp.Machine`; after running training
    samples, read ``packets`` (or ``raw()`` for the byte encoding).
    """

    def __init__(self, config: Optional[FilterConfig] = None,
                 recorder=None, injector=None,
                 buffer_limit: Optional[int] = None):
        self.config = config or FilterConfig()
        self.packets: List[Packet] = []
        #: fault-injection hook (see :mod:`repro.faults`) arming the
        #: ``ipt.drop`` / ``ipt.overflow`` sites in this tracer
        self.injector = injector
        #: packets the (simulated) trace buffer holds between sync points;
        #: exceeding it loses the incoming packet and emits OVF + PSB,
        #: like a ToPA buffer wrapping under load
        self.buffer_limit = buffer_limit
        self.overflows = 0
        self.dropped = 0
        self._tnt_bits: List[bool] = []
        self._enabled = False
        self._need_pge = False
        self._since_psb = 0
        self._round = 0
        self._pushed = 0
        self._telemetry = None
        if recorder is not None:
            from repro.telemetry.instruments import PacketTelemetry
            self._telemetry = PacketTelemetry(recorder, "emitted")

    # -- sink events --------------------------------------------------------

    def attach(self, machine) -> None:
        if not self.config.code_ranges:
            self.config.code_ranges = [machine.program.code_range()]

    def on_io_enter(self, key, args) -> None:
        self._enabled = True
        self._need_pge = True
        self._round += 1
        if self._telemetry is not None:
            self._telemetry.rounds.inc()
        self._push(PSB())

    def on_block(self, func, block) -> None:
        if not self._enabled or not self._need_pge:
            return
        # First block of the round: the PGE carries the entry address.
        if self.config.allows(block.address):
            self._push(TipPge(block.address))
            self._need_pge = False

    def on_branch(self, block, taken) -> None:
        if not self._enabled or not self.config.allows(block.address):
            return
        self._tnt_bits.append(taken)
        if len(self._tnt_bits) >= TNT_CAPACITY:
            self._flush_tnt()

    def on_tip(self, block, target_addr, kind) -> None:
        if not self._enabled or not self.config.allows(block.address):
            return
        self._flush_tnt()
        self._push(Tip(target_addr))

    def on_io_exit(self, key, result) -> None:
        self._flush_tnt()
        self._push(TipPgd(0))
        self._enabled = False

    def fault(self, address: int) -> None:
        """Record an async fault location (FUP), then stop the round."""
        if self._telemetry is not None:
            self._telemetry.faulted.inc()
        self._flush_tnt()
        self._push(Fup(address))
        self._push(TipPgd(address))
        self._enabled = False

    # -- output ------------------------------------------------------------

    def raw(self) -> bytes:
        return encode(self.packets)

    def clear(self) -> None:
        self.packets.clear()
        self._tnt_bits.clear()
        self._since_psb = 0
        self.overflows = 0
        self.dropped = 0

    def packet_count(self) -> int:
        return len(self.packets)

    # -- internals -----------------------------------------------------------

    def _flush_tnt(self) -> None:
        if self._tnt_bits:
            self._push(Tnt(tuple(self._tnt_bits)))
            self._tnt_bits.clear()

    def _push(self, pkt: Packet) -> None:
        self._pushed += 1
        # Sync packets are exempt from loss: real PT keeps emitting PSB+
        # through an overflow precisely so decoders can resynchronize.
        if not isinstance(pkt, PSB):
            if (self.buffer_limit is not None
                    and self._since_psb >= self.buffer_limit):
                self._overflow()
                return
            injector = self.injector
            if injector is not None:
                key = str(self._pushed)
                if injector.decide("ipt.drop", self._round, key) is not None:
                    self.dropped += 1
                    return
                if injector.decide("ipt.overflow", self._round,
                                   key) is not None:
                    self._overflow()
                    return
        self.packets.append(pkt)
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.count(pkt)
        self._since_psb += 1
        if self._since_psb >= PSB_PERIOD and not isinstance(pkt, TipPgd):
            psb = PSB()
            self.packets.append(psb)
            if telemetry is not None:
                telemetry.count(psb)
            self._since_psb = 0

    def _overflow(self) -> None:
        """The trace buffer wrapped: the incoming packet is lost.  Emit
        OVF so the decoder knows a gap starts here, then PSB so it can
        pick the stream back up at a sync boundary."""
        self.overflows += 1
        self.dropped += 1
        telemetry = self._telemetry
        for pkt in (Ovf(), PSB()):
            self.packets.append(pkt)
            if telemetry is not None:
                telemetry.count(pkt)
        self._since_psb = 0
