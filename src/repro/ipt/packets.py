"""Intel-PT-style packet model.

Real IPT emits a compressed packet stream; the packets that matter for
control-flow reconstruction (and the only ones FlowGuard-style ITC-CFG
construction consumes) are:

* ``PSB``      — synchronization boundary,
* ``TIP.PGE``  — tracing enabled at an address (our: I/O entered device),
* ``TIP.PGD``  — tracing disabled (our: I/O round left the device),
* ``TNT``      — a run of taken/not-taken bits for conditional branches,
* ``TIP``      — target address of an indirect transfer,
* ``FUP``      — flow-update (async event address; we emit it on faults).

We model packets as small dataclasses plus a compact byte encoding, so the
decoder genuinely works from bytes the way a PT decoder does (and so tests
can assert round-trips).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple, Union

from repro.errors import TraceError

_MAGIC = {
    "PSB": 0x01, "PGE": 0x02, "PGD": 0x03, "TNT": 0x04, "TIP": 0x05,
    "FUP": 0x06,
}
_REV_MAGIC = {v: k for k, v in _MAGIC.items()}

#: TNT packets carry at most this many branch bits (real short-TNT holds 6).
TNT_CAPACITY = 6


@dataclass(frozen=True)
class PSB:
    """Stream synchronization point."""


@dataclass(frozen=True)
class TipPge:
    """Tracing began at *ip* (filter matched: I/O request entered device)."""

    ip: int


@dataclass(frozen=True)
class TipPgd:
    """Tracing ended (I/O round completed or filter exited)."""

    ip: int


@dataclass(frozen=True)
class Tnt:
    """Up to :data:`TNT_CAPACITY` conditional-branch outcomes, oldest first."""

    bits: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not 0 < len(self.bits) <= TNT_CAPACITY:
            raise TraceError(
                f"TNT packet must carry 1..{TNT_CAPACITY} bits")


@dataclass(frozen=True)
class Tip:
    """Indirect transfer to *ip* (switch table jump or funcptr call)."""

    ip: int


@dataclass(frozen=True)
class Fup:
    """Asynchronous flow update at *ip* (we emit on device faults)."""

    ip: int


Packet = Union[PSB, TipPge, TipPgd, Tnt, Tip, Fup]


def encode(packets: Iterable[Packet]) -> bytes:
    """Serialize packets into the byte stream format.

    Layout: 1 magic byte, then for address packets an 8-byte LE ip; for TNT
    a count byte followed by a bit-packed byte.
    """
    out = bytearray()
    for pkt in packets:
        if isinstance(pkt, PSB):
            out.append(_MAGIC["PSB"])
        elif isinstance(pkt, TipPge):
            out.append(_MAGIC["PGE"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, TipPgd):
            out.append(_MAGIC["PGD"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, Tip):
            out.append(_MAGIC["TIP"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, Fup):
            out.append(_MAGIC["FUP"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, Tnt):
            out.append(_MAGIC["TNT"])
            out.append(len(pkt.bits))
            packed = 0
            for i, bit in enumerate(pkt.bits):
                if bit:
                    packed |= 1 << i
            out.append(packed)
        else:
            raise TraceError(f"cannot encode {type(pkt).__name__}")
    return bytes(out)


def decode(data: bytes) -> List[Packet]:
    """Parse a byte stream back into packets (inverse of :func:`encode`)."""
    packets: List[Packet] = []
    pos = 0
    size = len(data)
    while pos < size:
        magic = data[pos]
        pos += 1
        kind = _REV_MAGIC.get(magic)
        if kind is None:
            raise TraceError(f"bad magic byte {magic:#x} at offset {pos - 1}")
        if kind == "PSB":
            packets.append(PSB())
        elif kind == "TNT":
            if pos + 2 > size:
                raise TraceError("truncated TNT packet")
            count = data[pos]
            packed = data[pos + 1]
            pos += 2
            bits = tuple(bool(packed >> i & 1) for i in range(count))
            packets.append(Tnt(bits))
        else:
            if pos + 8 > size:
                raise TraceError(f"truncated {kind} packet")
            (ip,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            if kind == "PGE":
                packets.append(TipPge(ip))
            elif kind == "PGD":
                packets.append(TipPgd(ip))
            elif kind == "TIP":
                packets.append(Tip(ip))
            else:
                packets.append(Fup(ip))
    return packets


def iter_rounds(packets: Iterable[Packet]) -> Iterator[List[Packet]]:
    """Split a packet stream into per-I/O-round segments (PGE..PGD)."""
    current: List[Packet] = []
    inside = False
    for pkt in packets:
        if isinstance(pkt, TipPge):
            current = [pkt]
            inside = True
        elif isinstance(pkt, TipPgd):
            if inside:
                current.append(pkt)
                yield current
                current = []
                inside = False
        elif inside:
            current.append(pkt)
    if inside and current:
        # Trailing partial round (device faulted mid-I/O): still useful.
        yield current
