"""Intel-PT-style packet model.

Real IPT emits a compressed packet stream; the packets that matter for
control-flow reconstruction (and the only ones FlowGuard-style ITC-CFG
construction consumes) are:

* ``PSB``      — synchronization boundary,
* ``TIP.PGE``  — tracing enabled at an address (our: I/O entered device),
* ``TIP.PGD``  — tracing disabled (our: I/O round left the device),
* ``TNT``      — a run of taken/not-taken bits for conditional branches,
* ``TIP``      — target address of an indirect transfer,
* ``FUP``      — flow-update (async event address; we emit it on faults),
* ``OVF``      — the trace buffer overflowed and packets were lost; the
  decoder must resynchronize at the next PSB (real PT emits exactly this
  under load).

We model packets as small dataclasses plus a compact byte encoding, so the
decoder genuinely works from bytes the way a PT decoder does (and so tests
can assert round-trips).  PSB encodes as an 8-byte sync *pattern* (real PT
uses a 16-byte one) rather than a single magic byte: a desynchronized
decoder scans for the pattern to find the next trustworthy parse point,
and a single corrupted byte cannot plausibly forge one.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple, Union

from repro.errors import DecodeError, TraceError

_MAGIC = {
    "PSB": 0x01, "PGE": 0x02, "PGD": 0x03, "TNT": 0x04, "TIP": 0x05,
    "FUP": 0x06, "OVF": 0x07,
}
_REV_MAGIC = {v: k for k, v in _MAGIC.items()}

#: TNT packets carry at most this many branch bits (real short-TNT holds 6).
TNT_CAPACITY = 6

#: The on-the-wire PSB synchronization pattern (analogue of PT's 16-byte
#: ``02 82`` repetition).  Resynchronization scans for this sequence.
PSB_PATTERN = bytes((_MAGIC["PSB"], 0x82, 0x02, 0x82, 0x02, 0x82, 0x02,
                     0x82))


@dataclass(frozen=True)
class PSB:
    """Stream synchronization point."""


@dataclass(frozen=True)
class TipPge:
    """Tracing began at *ip* (filter matched: I/O request entered device)."""

    ip: int


@dataclass(frozen=True)
class TipPgd:
    """Tracing ended (I/O round completed or filter exited)."""

    ip: int


@dataclass(frozen=True)
class Tnt:
    """Up to :data:`TNT_CAPACITY` conditional-branch outcomes, oldest first."""

    bits: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not 0 < len(self.bits) <= TNT_CAPACITY:
            raise TraceError(
                f"TNT packet must carry 1..{TNT_CAPACITY} bits")


@dataclass(frozen=True)
class Tip:
    """Indirect transfer to *ip* (switch table jump or funcptr call)."""

    ip: int


@dataclass(frozen=True)
class Fup:
    """Asynchronous flow update at *ip* (we emit on device faults)."""

    ip: int


@dataclass(frozen=True)
class Ovf:
    """Trace buffer overflow: an unknown number of packets was dropped.

    Everything between this packet and the next PSB is untrustworthy;
    decoders must treat the region as a trace gap, not as a clean path.
    """


Packet = Union[PSB, TipPge, TipPgd, Tnt, Tip, Fup, Ovf]


@dataclass(frozen=True)
class TraceGap:
    """A byte region of the stream that could not be decoded.

    ``start`` is the offset where parsing failed (or where an OVF packet
    reported hardware loss); ``end`` is the offset of the PSB pattern
    where parsing resumed (``len(data)`` if no sync point was found).
    """

    start: int
    end: int
    reason: str          # "corruption" | "truncated" | "overflow"


@dataclass
class DecodeResult:
    """Outcome of a resilient decode: packets plus the regions lost."""

    packets: List[Packet] = field(default_factory=list)
    gaps: List[TraceGap] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.gaps

    def lost_bytes(self) -> int:
        return sum(g.end - g.start for g in self.gaps)


def encode(packets: Iterable[Packet]) -> bytes:
    """Serialize packets into the byte stream format.

    Layout: PSB is the 8-byte sync pattern; OVF a bare magic byte; address
    packets a magic byte plus an 8-byte LE ip; TNT a magic byte, a count
    byte, and a bit-packed byte.
    """
    out = bytearray()
    for pkt in packets:
        if isinstance(pkt, PSB):
            out += PSB_PATTERN
        elif isinstance(pkt, Ovf):
            out.append(_MAGIC["OVF"])
        elif isinstance(pkt, TipPge):
            out.append(_MAGIC["PGE"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, TipPgd):
            out.append(_MAGIC["PGD"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, Tip):
            out.append(_MAGIC["TIP"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, Fup):
            out.append(_MAGIC["FUP"])
            out += struct.pack("<Q", pkt.ip)
        elif isinstance(pkt, Tnt):
            out.append(_MAGIC["TNT"])
            out.append(len(pkt.bits))
            packed = 0
            for i, bit in enumerate(pkt.bits):
                if bit:
                    packed |= 1 << i
            out.append(packed)
        else:
            raise TraceError(f"cannot encode {type(pkt).__name__}")
    return bytes(out)


def _decode_from(data: bytes, pos: int,
                 packets: List[Packet]) -> None:
    """Parse from *pos* to the end, appending to *packets*; raises
    :class:`DecodeError` (offset + partial list) on the first bad byte."""
    size = len(data)
    while pos < size:
        start = pos
        magic = data[pos]
        pos += 1
        kind = _REV_MAGIC.get(magic)
        if kind is None:
            raise DecodeError(f"bad magic byte {magic:#x}", offset=start,
                              packets=packets)
        if kind == "PSB":
            end = start + len(PSB_PATTERN)
            if data[start:end] != PSB_PATTERN:
                if end > size:
                    raise DecodeError("truncated PSB pattern",
                                      offset=start, packets=packets)
                raise DecodeError("bad PSB sync pattern", offset=start,
                                  packets=packets)
            pos = end
            packets.append(PSB())
        elif kind == "OVF":
            packets.append(Ovf())
        elif kind == "TNT":
            if pos + 2 > size:
                raise DecodeError("truncated TNT packet", offset=start,
                                  packets=packets)
            count = data[pos]
            packed = data[pos + 1]
            pos += 2
            if not 0 < count <= TNT_CAPACITY:
                raise DecodeError(f"TNT count {count} out of range",
                                  offset=start, packets=packets)
            bits = tuple(bool(packed >> i & 1) for i in range(count))
            packets.append(Tnt(bits))
        else:
            if pos + 8 > size:
                raise DecodeError(f"truncated {kind} packet",
                                  offset=start, packets=packets)
            (ip,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            if kind == "PGE":
                packets.append(TipPge(ip))
            elif kind == "PGD":
                packets.append(TipPgd(ip))
            elif kind == "TIP":
                packets.append(Tip(ip))
            else:
                packets.append(Fup(ip))


def decode(data: bytes) -> List[Packet]:
    """Parse a byte stream back into packets (inverse of :func:`encode`).

    Strict: the first malformed byte raises :class:`DecodeError` carrying
    the offset and every packet decoded before it.
    """
    packets: List[Packet] = []
    _decode_from(data, 0, packets)
    return packets


def resync_offset(data: bytes, pos: int) -> int:
    """Offset of the next PSB sync pattern at or after *pos* (-1: none)."""
    return data.find(PSB_PATTERN, pos)


def decode_resilient(data: bytes) -> DecodeResult:
    """Decode with PSB-based resynchronization instead of raising.

    Every parse failure is converted into a :class:`TraceGap` spanning
    from the failure offset to the next PSB pattern (or end of stream),
    an :class:`Ovf` packet is inserted at the loss point so downstream
    round reconstruction knows the path has a hole, and parsing resumes
    at the sync boundary.  Never raises on any input.
    """
    result = DecodeResult()
    pos = 0
    size = len(data)
    while pos < size:
        try:
            _decode_from(data, pos, result.packets)
            break
        except DecodeError as exc:
            reason = ("truncated" if "truncated" in str(exc)
                      else "corruption")
            # Skip at least one byte: the failing offset itself may hold
            # a (corrupted) PSB magic.
            sync = resync_offset(data, exc.offset + 1)
            end = sync if sync >= 0 else size
            result.gaps.append(TraceGap(exc.offset, end, reason))
            result.packets.append(Ovf())
            if sync < 0:
                break
            pos = sync
    return result


def iter_rounds(packets: Iterable[Packet]) -> Iterator[List[Packet]]:
    """Split a packet stream into per-I/O-round segments (PGE..PGD)."""
    current: List[Packet] = []
    inside = False
    for pkt in packets:
        if isinstance(pkt, TipPge):
            current = [pkt]
            inside = True
        elif isinstance(pkt, TipPgd):
            if inside:
                current.append(pkt)
                yield current
                current = []
                inside = False
        elif inside:
            current.append(pkt)
    if inside and current:
        # Trailing partial round (device faulted mid-I/O): still useful.
        yield current
