"""Exception hierarchy shared across the SEDSpec reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
distinguish reproduction-infrastructure failures from genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: unknown block, bad operand types, broken invariants."""


class CompileError(ReproError):
    """The restricted-Python front end rejected a device source construct."""

    def __init__(self, message: str, lineno: int = 0, func: str = ""):
        self.lineno = lineno
        self.func = func
        prefix = f"{func}:{lineno}: " if func else ""
        super().__init__(prefix + message)


class InterpError(ReproError):
    """The IR interpreter hit an unrecoverable condition (not a device fault)."""


class DeviceFault(ReproError):
    """The emulated device crashed — the analogue of a QEMU segfault/abort.

    Raised e.g. when an out-of-bounds access leaves the device control
    structure entirely, or when an indirect call targets a non-code address.
    A :class:`DeviceFault` escaping to the VM is what a successful
    denial-of-service exploit looks like in this reproduction.
    """

    def __init__(self, message: str, device: str = "", kind: str = "fault"):
        self.device = device
        self.kind = kind
        super().__init__(f"[{device or 'device'}:{kind}] {message}")


class TraceError(ReproError):
    """IPT packet stream could not be encoded or decoded."""


class TruncatedTraceError(TraceError):
    """Trace container file is shorter than its own framing claims.

    Carries the byte offset at which the missing data was expected, so
    tooling can report exactly where a copy or capture was cut short."""

    def __init__(self, message: str, offset: int = 0):
        self.offset = offset
        super().__init__(f"{message} (offset {offset})")


class DecodeError(TraceError):
    """Typed decode failure: carries the byte offset where parsing died
    and the packets successfully decoded before it, so resynchronization
    can resume from the next PSB instead of discarding the stream."""

    def __init__(self, message: str, offset: int = 0, packets=()):
        self.offset = offset
        self.packets = list(packets)
        super().__init__(f"{message} (offset {offset})")


class InfraError(ReproError):
    """The enforcement *machinery* failed (trace loss, a transient
    interpreter fault, a stalled check) — an infrastructure condition,
    never a security verdict.  Degradation policies decide what a round
    that hit one of these means; it must never quarantine a tenant."""

    def __init__(self, message: str, kind: str = "infra"):
        self.kind = kind
        super().__init__(message)


class AnalysisError(ReproError):
    """CFG/data-flow analysis failed (e.g. unknown function, no entry)."""


class SpecError(ReproError):
    """Execution-specification construction or (de)serialization failed."""


class CheckerError(ReproError):
    """ES-Checker internal error (distinct from a detected anomaly)."""


class WorkloadError(ReproError):
    """A workload/benchmark harness was misconfigured."""


class GuestError(ReproError):
    """A guest driver observed a protocol violation from its device."""


class FleetError(ReproError):
    """The fleet enforcement service hit a control-plane failure
    (misconfiguration, stalled workers, respawn budget exhausted)."""


class PolicyError(ReproError):
    """A tenant resilience-policy document failed validation, or a
    policy artifact failed its content-digest check.  Raised eagerly at
    load so a malformed policy never disturbs a running fleet."""


class GatewayError(ReproError):
    """The admission gateway was misconfigured or broke an internal
    invariant (empty hash ring, unknown arrival pattern, lost events)."""
