"""Anomaly taxonomy, check strategies, and working modes (Section VI)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class Strategy(enum.Enum):
    """The three check strategies of Section VI-A."""

    PARAMETER = "parameter"             # integer / buffer overflow
    INDIRECT_JUMP = "indirect_jump"     # control-flow hijack
    CONDITIONAL_JUMP = "conditional_jump"  # irregular device operation


ALL_STRATEGIES = frozenset(Strategy)


class Mode(enum.Enum):
    """ES-Checker working modes (Section VI-B).

    * PROTECTION  — halt on *any* anomaly (high security requirements).
    * ENHANCEMENT — halt only on parameter-check anomalies (which cannot
      be false positives); the other strategies merely warn.
    """

    PROTECTION = "protection"
    ENHANCEMENT = "enhancement"


class Action(enum.Enum):
    """Outcome of one I/O check."""

    ALLOW = "allow"
    WARN = "warn"
    HALT = "halt"
    #: The checker could not vouch for the round because its *own*
    #: machinery failed (trace loss, decode failure, transient fault) and
    #: the degradation policy is fail-closed.  Explicitly not a security
    #: verdict: a TRACE_GAP must never quarantine a tenant.
    TRACE_GAP = "trace_gap"


@dataclass(frozen=True)
class Anomaly:
    """A single detected violation of the execution specification."""

    strategy: Strategy
    kind: str             # e.g. "integer-overflow", "unobserved-branch"
    message: str
    block_address: int = 0
    io_key: str = ""

    def __str__(self) -> str:
        return (f"[{self.strategy.value}/{self.kind}] {self.message} "
                f"(block {self.block_address:#x}, io {self.io_key})")


@dataclass
class CheckReport:
    """Everything the ES-Checker learned about one I/O interaction."""

    io_key: str
    action: Action = Action.ALLOW
    anomalies: List[Anomaly] = field(default_factory=list)
    #: blocks the checker walked (proxy for its runtime cost)
    blocks_walked: int = 0
    dsod_stmts_executed: int = 0
    #: walk ended early without verdict (e.g. strategy disabled at the
    #: point where the path left the spec)
    incomplete: bool = False
    #: check-site executions per enabled strategy this round.  Both
    #: checker backends maintain these identically (the differential
    #: tests hold them to dataclass equality), so they double as a
    #: behavioural fingerprint of the walk.
    param_checks: int = 0
    indirect_checks: int = 0
    conditional_checks: int = 0
    #: degradation policy in force when this report was produced — every
    #: report records it so an audit can tell fail-open allows apart from
    #: genuinely vetted ones
    policy: str = ""
    #: resolved tenant-policy id and generation (policy hot-reload epoch)
    #: in force when this report was produced, stamped by the fleet
    #: worker exactly as ``policy`` stamps the degradation mode
    policy_id: str = ""
    policy_generation: int = 0
    #: spec generation (hot-reload epoch) the round was vetted under,
    #: stamped by the guarded instance when it records the report; an
    #: offline bound audit uses it to pick the right epoch's table
    spec_epoch: int = 0
    #: the enforcement machinery lost (part of) this round: the report is
    #: an infrastructure outcome, not a security one
    trace_gap: bool = False
    #: why the round degraded (empty unless ``trace_gap``)
    gap_reason: str = ""
    #: lazily-dumped shadow state — ``final_state`` is O(device state) to
    #: materialize, and only eval/report code reads it, so the checker
    #: binds a source instead of dumping on the hot path
    _final_state: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False)
    _final_state_source: Optional[Callable[[], Dict[str, int]]] = field(
        default=None, repr=False, compare=False)

    @property
    def final_state(self) -> Dict[str, int]:
        """Scalar shadow-state parameters after this round (lazy)."""
        if self._final_state is None:
            source = self._final_state_source
            self._final_state = source() if source is not None else {}
        return self._final_state

    @final_state.setter
    def final_state(self, value: Dict[str, int]) -> None:
        self._final_state = value

    def bind_final_state(self,
                         source: Callable[[], Dict[str, int]]) -> None:
        """Defer the state dump until someone actually reads it."""
        self._final_state_source = source

    @property
    def ok(self) -> bool:
        return not self.anomalies

    def first_anomaly(self) -> Optional[Anomaly]:
        return self.anomalies[0] if self.anomalies else None


def decide_action(anomalies: List[Anomaly], mode: Mode) -> Action:
    """Working-mode policy: what to do about the detected anomalies."""
    if not anomalies:
        return Action.ALLOW
    if mode is Mode.PROTECTION:
        return Action.HALT
    if any(a.strategy is Strategy.PARAMETER for a in anomalies):
        return Action.HALT
    return Action.WARN
