"""Flat bytecode backend for execution specifications (the third
ES-Checker backend).

The closure backend (:mod:`repro.checker.compile`) removed per-node
``isinstance`` dispatch but still walks a chain of nested closures per
block, with the walk counters living as attributes on the per-round
:class:`_WalkContext`.  This module lowers the **whole spec** once into
a single flat array-encoded bytecode:

* ``code`` — one int opcode stream covering every trained routine, with
  all jump targets resolved to dense global block indices at lowering
  time (a synthesized *stub* block stands in for every
  referenced-but-untrained label, carrying its unobserved-path verdict);
* ``pool`` — the constant pool: field geometry, frozen check tables
  (legitimate icall/switch target sets, command-access rows, known
  commands), precomputed per-site **parameter bound tables** (declared
  lo/hi/mask per store site, buffer length/base/stride per access site),
  and pre-formatted anomaly messages;
* ``Switch`` terminators compiled to dense jump tables when the key
  range is compact and to binary-search key/target arrays otherwise,
  with each arm's legitimacy verdict precomputed into the table.

The assembler turns those arrays into **one generated Python frame per
spec**: a ``while`` loop dispatching on the global block index through a
binary jump-target tree, with an explicit call stack (so walk counters,
the current command, and the current address stay in locals for the
entire round) and a ``finally`` that reconciles them with the
:class:`_WalkContext`.  The arrays are the canonical artifact — they
serialize (:meth:`BytecodeSpec.to_payload`), digest, and round-trip
through the content-addressed registry; assembly is a deterministic
function of them and needs no spec object.

Strategy toggles stay runtime-dynamic (read from the walk context at
round entry), so one artifact serves every strategy configuration — the
ablation benches rely on that, exactly as with the closure backend.

Semantics replicate the reference walker bit-for-bit: every anomaly
kind, message, counter increment and stop flavour.
``tests/checker/test_backend_diff.py`` holds all three backends to that
across the five device models and the CVE corpus.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CheckerError, DeviceFault
from repro.checker.anomalies import (
    Action, CheckReport, Strategy, decide_action,
)
from repro.checker.compile import _WalkStop, _flag
from repro.interp.ops import _floordiv, _mod, binop_fn
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const, Expr,
    FuncPtrType, Goto, ICall, Intrinsic, IntType, Local, Param, Return,
    StateRef, StateStore, Switch, SyncVar, UnOp,
)
from repro.spec.escfg import ESBlock, ESFunction, ExecutionSpec

BYTECODE_FORMAT = 1

#: Little-endian fixed-width codecs shared by every specialized frame.
_S2 = struct.Struct("<H")
_S4 = struct.Struct("<I")
_S8 = struct.Struct("<Q")
BATCH_FORMAT = 1

#: read sentinels for the generated frame
_MISS = object()     # I/O parameter never provided
_UNDEF = object()    # ES local not yet assigned (slice gap)

# -- opcodes ----------------------------------------------------------------
C_CONST = 1          # ci
C_PARAM = 2          # pos mi
C_PARAM_MISS = 3     # mi       (name not among the routine's params)
C_LOCAL = 4          # slot mi
C_STATE = 5          # ii       (off, end, signed, bits)
C_STATEF = 6         # ni       (read_field fallback: buffer-decl read)
C_BUFLEN = 7         # v
C_BUFLOAD = 8        # ii
C_BINOP = 9          # oi
C_UNOP = 10          # oi
C_SYNC = 11          # ni
D_DSD = 20           #          dsod += 1 (charged before evaluation)
D_ASSIGN = 21        # slot
D_STORE = 22         # ii       (field, lo, hi, off, end, size, mask, msg)
D_STOREM = 23        # ni       (malformed decl: defer to shadow state)
D_BUFSTORE = 24      # ii
D_SETCMD = 25        # ii       (known-command row + messages)
D_CMDEND = 26        #
B_HDR = 30           # ii       (block prologue: watchdog + command gate)
N_GOTO = 40          # pc
N_BR = 41            # ii t nt
N_SWITCH = 42        # ii
N_CALL = 43          # ii nargs (transfer info in pool)
N_ICALL_PRE = 44     # ii
N_ICALL = 45         # nargs cont dest
N_RET0 = 46          #
N_RETV = 47          #
N_STUB = 48          # ni       (untrained-label landing block)
N_UNTRAINED = 49     # ni       (call into a function training never ran)
N_NONBTD = 50        # ni

_OPSYMS = ("+", "-", "*", "//", "%", "&", "|", "^", "<<", ">>",
           "==", "!=", "<", "<=", ">", ">=", "and", "or")
_UNSYMS = ("-", "~", "not")

_BIN_INLINE = {
    "+": "({a} + {b})", "-": "({a} - {b})", "*": "({a} * {b})",
    "&": "({a} & {b})", "|": "({a} | {b})", "^": "({a} ^ {b})",
    "<<": "({a} << ({b} & 63))", ">>": "({a} >> ({b} & 63))",
    "==": "(1 if {a} == {b} else 0)", "!=": "(1 if {a} != {b} else 0)",
    "<": "(1 if {a} < {b} else 0)", "<=": "(1 if {a} <= {b} else 0)",
    ">": "(1 if {a} > {b} else 0)", ">=": "(1 if {a} >= {b} else 0)",
    "and": "(1 if ({a} and {b}) else 0)",
    "or": "(1 if ({a} or {b}) else 0)",
}
_UN_INLINE = {"-": "(-({a}))", "~": "(~({a}))",
              "not": "(0 if {a} else 1)"}


def _index_is_state_derived(index: Expr) -> bool:
    """Same parameter-check scope rule as both existing backends."""
    if isinstance(index, Const):
        return True
    return bool(index.state_refs())


def _collect_locals(func: ESFunction) -> Tuple[str, ...]:
    """Every local name the routine reads or writes, in first-appearance
    order (the slot map)."""
    seen: Dict[str, None] = {}

    def visit(expr: Expr) -> None:
        if isinstance(expr, Local):
            seen.setdefault(expr.name)
        elif isinstance(expr, BinOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, UnOp):
            visit(expr.operand)
        elif isinstance(expr, BufLoad):
            visit(expr.index)

    for block in func.blocks.values():
        for stmt in block.dsod:
            if isinstance(stmt, Assign):
                seen.setdefault(stmt.target)
                visit(stmt.value)
            elif isinstance(stmt, StateStore):
                visit(stmt.value)
            elif isinstance(stmt, BufStore):
                visit(stmt.index)
                visit(stmt.value)
            elif isinstance(stmt, Intrinsic):
                for arg in stmt.args:
                    visit(arg)
        nbtd = block.nbtd
        if isinstance(nbtd, Branch):
            visit(nbtd.cond)
        elif isinstance(nbtd, Switch):
            visit(nbtd.scrutinee)
        elif isinstance(nbtd, (Call, ICall)):
            for arg in nbtd.args:
                visit(arg)
            if nbtd.dest is not None:
                seen.setdefault(nbtd.dest)
        elif isinstance(nbtd, Return) and nbtd.value is not None:
            visit(nbtd.value)
    return tuple(seen)


# ---------------------------------------------------------------------------
# Lowering: the whole spec -> one code/pool pair
# ---------------------------------------------------------------------------

class _SpecLowerer:
    def __init__(self, spec: ExecutionSpec):
        self.spec = spec
        self.code: List[int] = []
        self.pool: List[Any] = []
        self._pool_index: Dict[Any, int] = {}
        self.fnames = tuple(spec.functions)
        self.fid = {name: i for i, name in enumerate(self.fnames)}
        self.locals_of = {name: _collect_locals(func)
                          for name, func in spec.functions.items()}
        # Global pc assignment: per function, entry first, then the
        # remaining trained labels, then stubs for every referenced but
        # untrained label (sorted for determinism).
        self.pc_of: Dict[Tuple[str, str], int] = {}
        self.order: List[Tuple[str, str, bool]] = []   # (func, label, stub)
        pc = 0
        for name, func in spec.functions.items():
            labels = [func.entry] + [l for l in func.blocks
                                     if l != func.entry]
            referenced = set()
            for block in func.blocks.values():
                nbtd = block.nbtd
                if isinstance(nbtd, Goto):
                    referenced.add(nbtd.target)
                elif isinstance(nbtd, Branch):
                    referenced.update((nbtd.taken, nbtd.not_taken))
                elif isinstance(nbtd, Switch):
                    referenced.update(nbtd.table.values())
                    if nbtd.default:
                        referenced.add(nbtd.default)
                elif isinstance(nbtd, (Call, ICall)):
                    referenced.add(nbtd.cont)
            stubs = sorted(referenced - set(func.blocks))
            for label in labels:
                self.pc_of[(name, label)] = pc
                self.order.append((name, label, False))
                pc += 1
            for label in stubs:
                self.pc_of[(name, label)] = pc
                self.order.append((name, label, True))
                pc += 1
        self.entry_pc = tuple(
            self.pc_of[(name, spec.functions[name].entry)]
            for name in self.fnames)
        self.nparams = tuple(len(spec.functions[name].params)
                             for name in self.fnames)
        self.nlocals = tuple(len(self.locals_of[name])
                             for name in self.fnames)

    def ref(self, value: Any) -> int:
        key = (type(value).__name__, repr(value))
        idx = self._pool_index.get(key)
        if idx is None:
            idx = len(self.pool)
            self.pool.append(value)
            self._pool_index[key] = idx
        return idx

    def emit(self, *ops: int) -> None:
        self.code.extend(ops)

    def lower(self) -> "BytecodeSpec":
        spec = self.spec
        for name, label, stub in self.order:
            if stub:
                msg = (f"transition into {name}:{label} was never "
                       f"observed in training")
                self.emit(N_STUB, self.ref(msg))
                continue
            func = spec.functions[name]
            block = func.blocks[label]
            self.lower_block(func, block)
        return BytecodeSpec(
            device=spec.device, fnames=self.fnames,
            entry_pc=self.entry_pc, nparams=self.nparams,
            nlocals=self.nlocals, code=tuple(self.code),
            pool=tuple(self.pool))

    # -- blocks --------------------------------------------------------------

    def lower_block(self, func: ESFunction, block: ESBlock) -> None:
        spec = self.spec
        address = block.address
        gate = spec.cmd_access.commands_allowing(address)
        gate_msg = (f"block {address:#x} is not accessible under "
                    f"command %#x")
        self.emit(B_HDR, self.ref(
            (address, int(block.is_cmd_end),
             int(not block.is_cmd_decision), gate, gate_msg)))
        for stmt in block.dsod:
            self.lower_dsod(stmt, func, block)
        self.lower_nbtd(func, block)

    # -- expressions ---------------------------------------------------------

    def lower_expr(self, expr: Expr, func: ESFunction) -> None:
        spec = self.spec
        if isinstance(expr, Const):
            self.emit(C_CONST, self.ref(expr.value))
        elif isinstance(expr, Param):
            msg = f"missing I/O parameter {expr.name!r}"
            if expr.name in func.params:
                self.emit(C_PARAM, tuple(func.params).index(expr.name),
                          self.ref(msg))
            else:
                self.emit(C_PARAM_MISS, self.ref(msg))
        elif isinstance(expr, Local):
            slot = self.locals_of[func.name].index(expr.name)
            msg = f"ES local {expr.name!r} undefined (slice gap)"
            self.emit(C_LOCAL, slot, self.ref(msg))
        elif isinstance(expr, StateRef):
            decl = spec.layout.field(expr.field)
            if decl.is_buffer:
                self.emit(C_STATEF, self.ref(expr.field))
            else:
                signed = (isinstance(decl.type, IntType)
                          and decl.type.signed)
                self.emit(C_STATE, self.ref(
                    (decl.offset, decl.end, int(signed),
                     decl.type.bits if signed else 0)))
        elif isinstance(expr, BufLoad):
            self.lower_expr(expr.index, func)
            decl = spec.layout.field(expr.buf)
            elem = decl.type.elem
            checked = _index_is_state_derived(expr.index)
            msg = (f"read at dev.{expr.buf}[%d] is outside the "
                   f"buffer's {decl.type.length} elements")
            self.emit(C_BUFLOAD, self.ref(
                (expr.buf, int(checked), decl.type.length, decl.offset,
                 elem.size, int(elem.signed), elem.bits,
                 spec.layout.size, msg)))
        elif isinstance(expr, BufLen):
            self.emit(C_BUFLEN, expr.length)
        elif isinstance(expr, SyncVar):
            self.emit(C_SYNC, self.ref(expr.name))
        elif isinstance(expr, BinOp):
            if isinstance(expr.left, Const) and isinstance(expr.right,
                                                           Const):
                try:
                    folded = binop_fn(expr.op)(expr.left.value,
                                               expr.right.value)
                except DeviceFault:
                    pass    # div0 must stay a runtime fault
                else:
                    self.emit(C_CONST, self.ref(folded))
                    return
            self.lower_expr(expr.left, func)
            self.lower_expr(expr.right, func)
            self.emit(C_BINOP, _OPSYMS.index(expr.op))
        elif isinstance(expr, UnOp):
            self.lower_expr(expr.operand, func)
            self.emit(C_UNOP, _UNSYMS.index(expr.op))
        else:
            # Mirrors the closure backend's run_unknown: a CheckerError
            # when (never) evaluated; lowering keeps it site-precise.
            self.emit(C_SYNC, self.ref(
                f"__cannot_evaluate__{type(expr).__name__}"))

    # -- DSOD ----------------------------------------------------------------

    def lower_dsod(self, stmt, func: ESFunction, block: ESBlock) -> None:
        spec = self.spec
        address = block.address
        self.emit(D_DSD)
        if isinstance(stmt, Assign):
            self.lower_expr(stmt.value, func)
            self.emit(D_ASSIGN,
                      self.locals_of[func.name].index(stmt.target))
        elif isinstance(stmt, StateStore):
            self.lower_expr(stmt.value, func)
            decl = spec.layout.field(stmt.field)
            if isinstance(decl.type, FuncPtrType):
                lo, hi = 0, (1 << 64) - 1
            elif isinstance(decl.type, IntType):
                lo, hi = decl.type.min_value, decl.type.max_value
            else:
                self.emit(D_STOREM, self.ref(stmt.field))
                return
            msg = (f"storing %d into dev.{stmt.field} ({decl.type}) "
                   f"overflows its declared range")
            mask = (1 << (decl.size * 8)) - 1
            self.emit(D_STORE, self.ref(
                (stmt.field, lo, hi, decl.offset, decl.end, decl.size,
                 mask, msg, address)))
        elif isinstance(stmt, BufStore):
            self.lower_expr(stmt.index, func)
            self.lower_expr(stmt.value, func)
            decl = spec.layout.field(stmt.buf)
            checked = _index_is_state_derived(stmt.index)
            msg = (f"write at dev.{stmt.buf}[%d] is outside the "
                   f"buffer's {decl.type.length} elements")
            emask = (1 << (decl.type.elem.size * 8)) - 1
            self.emit(D_BUFSTORE, self.ref(
                (stmt.buf, int(checked), decl.type.length, decl.offset,
                 decl.type.elem.size, emask, spec.layout.size, msg,
                 address)))
        elif isinstance(stmt, Intrinsic):
            if stmt.kind == "command_decision" and stmt.args:
                self.lower_expr(stmt.args[0], func)
                self.emit(D_SETCMD, self._setcmd_ref(address))
            elif stmt.kind == "command_end":
                self.emit(D_CMDEND)
            # other intrinsics: the D_DSD above is the whole effect
        else:
            self.emit(C_SYNC, self.ref(
                f"__unexpected_dsod__{type(stmt).__name__}"))

    def _setcmd_ref(self, address: int) -> int:
        known = self.spec.cmd_access.known_commands()
        return self.ref((frozenset(known),
                         "command %#x never observed in training",
                         address))

    # -- NBTD ----------------------------------------------------------------

    def lower_nbtd(self, func: ESFunction, block: ESBlock) -> None:
        spec = self.spec
        nbtd = block.nbtd
        address = block.address
        fname = func.name

        def pc(label: str) -> int:
            return self.pc_of[(fname, label)]

        if isinstance(nbtd, Goto):
            self.emit(N_GOTO, pc(nbtd.target))
        elif isinstance(nbtd, Branch):
            self.lower_expr(nbtd.cond, func)
            one_sided = spec.branch_is_one_sided(address)
            if one_sided is None:
                info = (-1, "")
            else:
                outcome = not one_sided   # the side that violates
                msg = (f"branch at {address:#x} took its never-trained "
                       f"side ({'taken' if outcome else 'not taken'})")
                info = (int(one_sided), msg)
            self.emit(N_BR, self.ref((info[0], info[1], address)),
                      pc(nbtd.taken), pc(nbtd.not_taken))
        elif isinstance(nbtd, Switch):
            self.lower_expr(nbtd.scrutinee, func)
            legit = spec.frozen_switch_targets(address)
            addr_of = {lbl: b.address for lbl, b in func.blocks.items()}

            def arm_pc(label: Optional[str]) -> int:
                if not label:
                    return -1
                if legit and addr_of.get(label) not in legit:
                    return -2
                return pc(label)

            table = {k: arm_pc(v) for k, v in nbtd.table.items()}
            default = arm_pc(nbtd.default)
            no_arm_msg = f"switch at {address:#x} has no arm for %d"
            not_legit_msg = (f"switch arm for %d at {address:#x} was "
                             f"never observed in training")
            enc = _encode_switch(table, default)
            setcmd = (self._setcmd_ref(address)
                      if block.is_cmd_decision else -1)
            self.emit(N_SWITCH, self.ref(
                (enc, int(bool(legit)), no_arm_msg, not_legit_msg,
                 address, setcmd)))
        elif isinstance(nbtd, Call):
            if not spec.has_function(nbtd.func):
                msg = (f"call into {nbtd.func}, which no training run "
                       f"executed")
                self.emit(N_UNTRAINED, self.ref((msg, address)))
                return
            for arg in nbtd.args:
                self.lower_expr(arg, func)
            callee = nbtd.func
            dest = (self.locals_of[fname].index(nbtd.dest)
                    if nbtd.dest is not None else -1)
            self.emit(N_CALL, self.ref(
                (self.entry_pc[self.fid[callee]],
                 self.nparams[self.fid[callee]],
                 self.nlocals[self.fid[callee]],
                 pc(nbtd.cont), dest)), len(nbtd.args))
        elif isinstance(nbtd, ICall):
            decl = spec.layout.field(nbtd.ptr_field)
            signed = (not decl.is_buffer
                      and isinstance(decl.type, IntType)
                      and decl.type.signed)
            legit = spec.frozen_icall_targets(address)
            by_addr = {
                addr: self.fid[fn]
                for addr, fn in ((a, spec.addr_to_func.get(a))
                                 for a in legit)
                if fn is not None and fn in self.fid
            }
            msg = (f"dev.{nbtd.ptr_field} points at %#x, not a "
                   f"legitimate target of this call site")
            self.emit(N_ICALL_PRE, self.ref(
                (decl.offset, decl.end, int(signed),
                 decl.type.bits if signed else 0, frozenset(legit),
                 by_addr, msg, address)))
            for arg in nbtd.args:
                self.lower_expr(arg, func)
            dest = (self.locals_of[fname].index(nbtd.dest)
                    if nbtd.dest is not None else -1)
            self.emit(N_ICALL, len(nbtd.args), pc(nbtd.cont), dest)
        elif isinstance(nbtd, Return):
            if nbtd.value is None:
                self.emit(N_RET0)
            else:
                self.lower_expr(nbtd.value, func)
                self.emit(N_RETV)
        else:
            self.emit(N_NONBTD, self.ref(
                f"ES block {block.label} has no NBTD"))


def _encode_switch(table: Dict[int, int],
                   default: int) -> Tuple[Any, ...]:
    if table:
        lo, hi = min(table), max(table)
        span = hi - lo + 1
        if span <= max(16, 4 * len(table)):
            dense = tuple(table.get(lo + i, default) for i in range(span))
            return ("dense", lo, dense, default)
    keys = tuple(sorted(table))
    vals = tuple(table[k] for k in keys)
    return ("bsearch", keys, vals, default)


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------

class BytecodeSpec:
    """One spec's flat bytecode arrays plus its assembled walk frame."""

    __slots__ = ("device", "fnames", "entry_pc", "nparams", "nlocals",
                 "code", "pool", "_walk", "_walk_batch", "_fid",
                 "_entry")

    def __init__(self, device: str, fnames: Tuple[str, ...],
                 entry_pc: Tuple[int, ...], nparams: Tuple[int, ...],
                 nlocals: Tuple[int, ...], code: Tuple[int, ...],
                 pool: Tuple[Any, ...]):
        self.device = device
        self.fnames = fnames
        self.entry_pc = entry_pc
        self.nparams = nparams
        self.nlocals = nlocals
        self.code = code
        self.pool = pool
        self._walk: Optional[Callable] = None
        self._walk_batch: Optional[Callable] = None
        self._fid = {name: i for i, name in enumerate(fnames)}
        self._entry = {name: (entry_pc[i], nparams[i], nlocals[i])
                       for i, name in enumerate(fnames)}

    def assemble(self) -> "BytecodeSpec":
        """Self-contained: assembly reads only the arrays."""
        self._walk = _assemble_spec(self)
        return self

    def batch_walk(self) -> Callable:
        """The batched entry's generated frame, assembled on first use
        (the per-round ``_walk`` is untouched — the batched frame is a
        second, spec-specialized artifact)."""
        wb = self._walk_batch
        if wb is None:
            wb = _assemble_spec(self, batched=True)
            self._walk_batch = wb
        return wb

    def run(self, w, handler: str, args: Tuple[int, ...]) -> Optional[int]:
        """One I/O round's walk; counters flush even on early stops
        (mirrors :meth:`CompiledSpec.run`)."""
        try:
            pc0, np, nl = self._entry[handler]
            if len(args) == np:
                par = args if type(args) is tuple else tuple(args)
            else:
                par = (tuple(args) + (_MISS,) * np)[:np]
            return self._walk(w, pc0, par, [_UNDEF] * nl)
        finally:
            report = w.report
            report.blocks_walked += w.blocks
            report.dsod_stmts_executed += w.dsod
            report.param_checks += w.pchecks
            report.indirect_checks += w.ichecks
            report.conditional_checks += w.cchecks

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": BYTECODE_FORMAT,
            "kind": "checker-bytecode",
            "device": self.device,
            "fnames": list(self.fnames),
            "entry_pc": list(self.entry_pc),
            "nparams": list(self.nparams),
            "nlocals": list(self.nlocals),
            "code": list(self.code),
            "pool": [_tag_const(c) for c in self.pool],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BytecodeSpec":
        if payload.get("format") != BYTECODE_FORMAT:
            raise CheckerError(
                f"unsupported bytecode format {payload.get('format')!r}")
        if payload.get("kind") != "checker-bytecode":
            raise CheckerError("payload is not a checker bytecode")
        return cls(
            device=payload["device"], fnames=tuple(payload["fnames"]),
            entry_pc=tuple(payload["entry_pc"]),
            nparams=tuple(payload["nparams"]),
            nlocals=tuple(payload["nlocals"]),
            code=tuple(payload["code"]),
            pool=tuple(_untag_const(c) for c in payload["pool"]))

    def digest(self) -> str:
        blob = json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # -- the specialized batch artifact --------------------------------------

    def batch_payload(self) -> Dict[str, Any]:
        """The spec-specialized batched dispatch as a self-contained
        artifact: the generated source plus the constant tables it
        closes over (trained access tables, jump tables, legitimate
        target sets).  Deterministic for a given bytecode, so it is
        content-addressable alongside the ``bc-*`` artifacts."""
        walk = self.batch_walk()
        return {
            "format": BATCH_FORMAT,
            "kind": "checker-batch-dispatch",
            "device": self.device,
            "bytecode_digest": self.digest(),
            "source": walk._bytecode_source,
            "consts": {k: _tag_const(v)
                       for k, v in sorted(
                           walk._bytecode_consts.items())},
        }

    def attach_batch_payload(self, payload: Dict[str, Any]) -> None:
        """Adopt a cached specialized dispatch instead of re-running
        specialization.  The payload must belong to this bytecode."""
        if payload.get("format") != BATCH_FORMAT:
            raise CheckerError(
                f"unsupported batch format {payload.get('format')!r}")
        if payload.get("kind") != "checker-batch-dispatch":
            raise CheckerError("payload is not a batch dispatch")
        if payload.get("device") != self.device:
            raise CheckerError(
                f"batch dispatch for {payload.get('device')!r} cannot "
                f"serve {self.device!r}")
        if payload.get("bytecode_digest") != self.digest():
            raise CheckerError(
                "batch dispatch was specialized from a different "
                "spec generation")
        bound = {k: _untag_const(v)
                 for k, v in payload["consts"].items()}
        namespace: Dict[str, Any] = _base_consts(self)
        namespace.update(bound)
        source = payload["source"]
        exec(compile(source, f"<es-bytecode-batch:{self.device}>",
                     "exec"), namespace)
        walk = namespace["_walk_batch"]
        walk._bytecode_source = source
        walk._bytecode_consts = bound
        self._walk_batch = walk


def _tag_const(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_tag_const(v) for v in value]}
    if isinstance(value, frozenset):
        return {"t": "fset", "v": sorted(value)}
    if isinstance(value, dict):
        return {"t": "imap",
                "v": [[k, _tag_const(v)]
                      for k, v in sorted(value.items())]}
    return value


def _untag_const(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("t")
        if tag == "tuple":
            return tuple(_untag_const(v) for v in value["v"])
        if tag == "fset":
            return frozenset(value["v"])
        if tag == "imap":
            return {k: _untag_const(v) for k, v in value["v"]}
        raise CheckerError(f"unknown constant tag {tag!r}")
    return value


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------

class _Asm:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self._temp = 0

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"


def _state_load_expr(off: int, end: int, signed: int, bits: int,
                     direct: bool = False) -> str:
    if direct and end - off == 1:
        # Specialized form: a one-byte field is a plain bytearray index —
        # no slice object, no int.from_bytes call.
        raw = f"_sdata[{off}]"
    elif direct and end - off == 2:
        # Two index ops beat the slice allocation + from_bytes call;
        # wider fields use the fixed-width codecs below.
        raw = f"(_sdata[{off}] | _sdata[{off + 1}] << 8)"
    elif direct and end - off in (4, 8):
        raw = f"_u{end - off}(_sdata, {off})[0]"
    else:
        raw = f'_ifb(_sdata[{off}:{end}], "little")'
    if signed:
        half, mod = 1 << (bits - 1), 1 << bits
        return f"((({raw} + {half}) % {mod}) - {half})"
    return raw


def _base_consts(bspec: "BytecodeSpec") -> Dict[str, Any]:
    """The non-serializable part of a generated frame's namespace:
    helpers, sentinels, and the function tables derived from the
    bytecode arrays."""
    from bisect import bisect_left

    def _die(msg: str) -> int:
        raise CheckerError(msg)

    return {
        "_ifb": int.from_bytes, "_fdiv": _floordiv, "_fmod": _mod,
        "_flag": _flag, "_WalkStop": _WalkStop,
        "CheckerError": CheckerError,
        "_SP": Strategy.PARAMETER, "_SI": Strategy.INDIRECT_JUMP,
        "_SC": Strategy.CONDITIONAL_JUMP,
        "_MISS": _MISS, "_UNDEF": _UNDEF,
        "_FENT": bspec.entry_pc, "_FNP": bspec.nparams,
        "_FNL": bspec.nlocals,
        "_MISSPAD": (_MISS,) * (max(bspec.nparams, default=0) + 1),
        "_bisect": bisect_left, "_die": _die,
        # Batched-driver helpers (unused by the per-round frame).
        "_CR": CheckReport, "_decide": decide_action,
        "_ALLOW": Action.ALLOW, "_bytes": bytes,
        # Fixed-width accessors for the specialized source: no slice
        # allocation, no int.to_bytes object per store.
        "_u2": _S2.unpack_from, "_u4": _S4.unpack_from,
        "_u8": _S8.unpack_from,
        "_p2": _S2.pack_into, "_p4": _S4.pack_into,
        "_p8": _S8.pack_into,
    }


_INT_LITERAL = __import__("re").compile(r"-?\d+")


def _assemble_spec(bspec: BytecodeSpec, batched: bool = False) -> Callable:
    """Assemble the arrays into a generated Python frame.

    ``batched=False`` produces the per-round ``_walk`` entry, unchanged.
    ``batched=True`` produces the cross-round ``_walk_batch`` entry with
    a **spec-specialized** dispatch source: the trained access tables
    and parameter bounds are constant-folded into the emitted code at
    assembly time (single-byte field accesses become direct bytearray
    indexing, bound checks on in-range constant stores reduce to their
    counter increment, anomaly addresses become literals, and command
    gates that a ``command_end`` prologue makes unreachable are
    elided), and the frame loops over the batch's rounds internally so
    the prologue — strategy toggles, shadow buffer, oracle, watchdog
    budget — is set up once per batch instead of once per round.
    """
    code, pool = bspec.code, bspec.pool
    consts: Dict[str, Any] = _base_consts(bspec)
    const_n = 0
    cur_addr: Optional[int] = None   # current block address (batched)

    def bind(value: Any, prefix: str = "_K") -> str:
        nonlocal const_n
        const_n += 1
        name = f"{prefix}{const_n}"
        consts[name] = value
        return name

    asm = _Asm()
    stack: List[str] = []   # expression strings; temps already spilled

    def push(expr: str) -> None:
        stack.append(expr)

    def pop() -> str:
        return stack.pop()

    def spill_pending() -> None:
        for i, expr in enumerate(stack):
            if not (expr.startswith("_t") and expr[2:].isdigit()):
                t = asm.temp()
                asm.w(f"{t} = {expr}")
                stack[i] = t

    def force_temp(expr: str) -> str:
        if expr.startswith("_t") and expr[2:].isdigit():
            return expr
        t = asm.temp()
        asm.w(f"{t} = {expr}")
        return t

    def emit_flag_raise(strategy: str, kind: str, msg_expr: str,
                        addr_expr: str, plain: bool = False) -> None:
        if plain:
            asm.w(f"_flag(w, {strategy}, {kind!r}, {msg_expr}, "
                  f"{addr_expr})")
            asm.w("raise _WalkStop()")
        else:
            asm.w(f"_r = _flag(w, {strategy}, {kind!r}, {msg_expr}, "
                  f"{addr_expr})")
            asm.w("raise _WalkStop(not _r)")

    blocks: List[List[str]] = []
    pc = 0
    n = len(code)
    while pc < n:
        op = code[pc]
        if op == B_HDR:
            asm.lines = []
            blocks.append(asm.lines)
            address, is_cmd_end, gated, gate, gate_msg = pool[code[pc + 1]]
            cur_addr = address
            asm.w(f"_addr = {address}")
            asm.w("_blk += 1")
            asm.w("if _blk > _maxb:")
            asm.indent += 1
            asm.w(f'_flag(w, _SC, "walk-watchdog", "specification walk '
                  f'exceeded block budget", {address})')
            asm.w("raise _WalkStop()")
            asm.indent -= 1
            if is_cmd_end:
                asm.w("_cmd = None")
            if gated and batched and is_cmd_end:
                # The command_end prologue just cleared _cmd, so the
                # gate below it can never fire: fold it away.
                gated = 0
            if gated:
                gref = bind(gate, "_G")
                asm.w("if _cmd is not None:")
                asm.indent += 1
                asm.w("if _con: _cch += 1")
                asm.w(f"if _cmd not in {gref}:")
                asm.indent += 1
                emit_flag_raise("_SC", "command-access",
                                f"{gate_msg!r} % _cmd", str(address))
                asm.indent -= 2
            pc += 2
        elif op == N_STUB:
            asm.lines = []
            blocks.append(asm.lines)
            # A stub flags at the *predecessor's* address (the block the
            # untrained transition left from), so _addr must stay
            # dynamic here even in the specialized source.
            cur_addr = None
            emit_flag_raise("_SC", "unobserved-path",
                            repr(pool[code[pc + 1]]), "_addr")
            pc += 2
        elif op == C_CONST:
            push(repr(pool[code[pc + 1]]))
            pc += 2
        elif op == C_PARAM:
            pos, mi = code[pc + 1], code[pc + 2]
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = _par[{pos}]")
            asm.w(f"if {t} is _MISS:")
            asm.indent += 1
            asm.w(f"raise CheckerError({pool[mi]!r})")
            asm.indent -= 1
            push(t)
            pc += 3
        elif op == C_PARAM_MISS:
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = _die({pool[code[pc + 1]]!r})")
            push(t)
            pc += 2
        elif op == C_LOCAL:
            slot, mi = code[pc + 1], code[pc + 2]
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = _env[{slot}]")
            asm.w(f"if {t} is _UNDEF:")
            asm.indent += 1
            asm.w(f"raise CheckerError({pool[mi]!r})")
            asm.indent -= 1
            push(t)
            pc += 3
        elif op == C_STATE:
            off, end, signed, bits = pool[code[pc + 1]]
            push(_state_load_expr(off, end, signed, bits,
                                  direct=batched))
            pc += 2
        elif op == C_STATEF:
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = w.state.read_field({pool[code[pc + 1]]!r})")
            push(t)
            pc += 2
        elif op == C_BUFLEN:
            push(repr(code[pc + 1]))
            pc += 2
        elif op == C_BUFLOAD:
            (buf, checked, length, base, esize, signed, bits,
             struct_size, msg) = pool[code[pc + 1]]
            index = pop()
            spill_pending()
            i = force_temp(index)
            load_addr = ("_addr" if not batched or cur_addr is None
                         else str(cur_addr))
            if checked:
                asm.w("if _pon:")
                asm.indent += 1
                asm.w("_pch += 1")
                asm.w(f"if not 0 <= {i} < {length}:")
                asm.indent += 1
                emit_flag_raise("_SP", "buffer-overflow",
                                f"{msg!r} % {i}", load_addr, plain=True)
                asm.indent -= 2
            o = asm.temp()
            asm.w(f"{o} = {base} + {i} * {esize}")
            asm.w(f"if {o} < 0 or {o} + {esize} > {struct_size}:")
            asm.indent += 1
            asm.w("raise _WalkStop(True)")
            asm.indent -= 1
            t = asm.temp()
            if batched and esize == 1:
                raw = f"_sdata[{o}]"
            elif batched and esize == 2:
                raw = f"(_sdata[{o}] | _sdata[{o} + 1] << 8)"
            elif batched and esize in (4, 8):
                raw = f"_u{esize}(_sdata, {o})[0]"
            else:
                raw = f'_ifb(_sdata[{o}:{o} + {esize}], "little")'
            if signed:
                half, mod = 1 << (bits - 1), 1 << bits
                asm.w(f"{t} = ((({raw} + {half}) % {mod}) - {half})")
            else:
                asm.w(f"{t} = {raw}")
            push(t)
            pc += 2
        elif op == C_BINOP:
            sym = _OPSYMS[code[pc + 1]]
            b, a = pop(), pop()
            if sym in ("//", "%"):
                spill_pending()
                t = asm.temp()
                fn = "_fdiv" if sym == "//" else "_fmod"
                asm.w(f"{t} = {fn}({a}, {b})")
                push(t)
            else:
                push(_BIN_INLINE[sym].format(a=a, b=b))
            pc += 2
        elif op == C_UNOP:
            push(_UN_INLINE[_UNSYMS[code[pc + 1]]].format(a=pop()))
            pc += 2
        elif op == C_SYNC:
            name = pool[code[pc + 1]]
            spill_pending()
            t = asm.temp()
            if name.startswith("__cannot_evaluate__"):
                kind = name[len("__cannot_evaluate__"):]
                asm.w(f"{t} = _die({f'cannot evaluate {kind}'!r})")
            elif name.startswith("__unexpected_dsod__"):
                kind = name[len("__unexpected_dsod__"):]
                asm.w(f"{t} = _die("
                      f"{f'unexpected DSOD statement {kind}'!r})")
            else:
                asm.w(f"{t} = _res({name!r})")
            push(t)
            pc += 2
        elif op == D_DSD:
            asm.w("_dsd += 1")
            pc += 1
        elif op == D_ASSIGN:
            asm.w(f"_env[{code[pc + 1]}] = {pop()}")
            pc += 2
        elif op == D_STORE:
            (field, lo, hi, off, end, size, mask, msg,
             address) = pool[code[pc + 1]]
            raw_v = pop()
            folded = (batched and _INT_LITERAL.fullmatch(raw_v)
                      and lo <= int(raw_v) <= hi)
            if folded:
                # Constant store inside its declared bounds: the check
                # can never fire, only its counter survives.
                v = raw_v
                asm.w("if _pon: _pch += 1")
            else:
                v = force_temp(raw_v)
                asm.w("if _pon:")
                asm.indent += 1
                asm.w("_pch += 1")
                asm.w(f"if not {lo} <= {v} <= {hi}:")
                asm.indent += 1
                emit_flag_raise("_SP", "integer-overflow",
                                f"{msg!r} % {v}", str(address),
                                plain=True)
                asm.indent -= 2
            if batched and folded:
                if size == 1:
                    asm.w(f"_sdata[{off}] = {int(v) & mask}")
                else:
                    blob = (int(v) & mask).to_bytes(size, "little")
                    asm.w(f"_sdata[{off}:{end}] = {blob!r}")
            elif batched and size == 1:
                asm.w(f"_sdata[{off}] = {v} & {mask}")
            elif batched and size in (2, 4, 8):
                asm.w(f"_p{size}(_sdata, {off}, {v} & {mask})")
            else:
                asm.w(f"_sdata[{off}:{end}] = ({v} & {mask})"
                      f'.to_bytes({size}, "little")')
            pc += 2
        elif op == D_STOREM:
            field = pool[code[pc + 1]]
            v = force_temp(pop())
            asm.w("if _pon:")
            asm.indent += 1
            asm.w("_pch += 1")
            asm.w(f"if not w.state.in_range({field!r}, {v}):")
            asm.indent += 1
            asm.w('raise AssertionError("unreachable")')
            asm.indent -= 2
            asm.w(f"w.state.write_field({field!r}, {v})")
            pc += 2
        elif op == D_BUFSTORE:
            (buf, checked, length, base, esize, emask, struct_size,
             msg, address) = pool[code[pc + 1]]
            value, index = pop(), pop()
            i = force_temp(index)
            v = force_temp(value)
            if checked:
                asm.w("if _pon:")
                asm.indent += 1
                asm.w("_pch += 1")
                asm.w(f"if not 0 <= {i} < {length}:")
                asm.indent += 1
                emit_flag_raise("_SP", "buffer-overflow",
                                f"{msg!r} % {i}", str(address),
                                plain=True)
                asm.indent -= 2
            o = asm.temp()
            asm.w(f"{o} = {base} + {i} * {esize}")
            asm.w(f"if {o} < 0 or {o} + {esize} > {struct_size}:")
            asm.indent += 1
            asm.w("raise _WalkStop(True)")
            asm.indent -= 1
            if batched and esize == 1:
                asm.w(f"_sdata[{o}] = {v} & {emask}")
            elif batched and esize in (2, 4, 8):
                asm.w(f"_p{esize}(_sdata, {o}, {v} & {emask})")
            else:
                asm.w(f"_sdata[{o}:{o} + {esize}] = ({v} & {emask})"
                      f'.to_bytes({esize}, "little")')
            pc += 2
        elif op == D_SETCMD:
            known, msg, address = pool[code[pc + 1]]
            v = force_temp(pop())
            _emit_setcmd(asm, bind, known, msg, address, v,
                         emit_flag_raise)
            pc += 2
        elif op == D_CMDEND:
            asm.w("_cmd = None")
            pc += 1
        elif op == N_GOTO:
            asm.w(f"_pc = {code[pc + 1]}")
            asm.w("continue")
            pc += 2
        elif op == N_BR:
            one_sided, msg, address = pool[code[pc + 1]]
            t_pc, nt_pc = code[pc + 2], code[pc + 3]
            cond = pop()
            if one_sided < 0:
                if batched:
                    # Split arms so each gets a static `_pc = K` tail:
                    # the tail inliner and the self-loop wrapper can
                    # then collapse trained loop back-edges.
                    asm.w(f"if {cond}:")
                    asm.indent += 1
                    asm.w(f"_pc = {t_pc}")
                    asm.w("continue")
                    asm.indent -= 1
                    asm.w(f"_pc = {nt_pc}")
                else:
                    asm.w(f"_pc = {t_pc} if {cond} else {nt_pc}")
            else:
                c = force_temp(cond)
                asm.w("if _con: _cch += 1")
                if one_sided:   # trained side: taken
                    asm.w(f"if not {c}:")
                    asm.indent += 1
                    emit_flag_raise("_SC", "unobserved-branch",
                                    repr(msg), str(address))
                    asm.indent -= 1
                    asm.w(f"_pc = {t_pc}")
                else:
                    asm.w(f"if {c}:")
                    asm.indent += 1
                    emit_flag_raise("_SC", "unobserved-branch",
                                    repr(msg), str(address))
                    asm.indent -= 1
                    asm.w(f"_pc = {nt_pc}")
            asm.w("continue")
            pc += 4
        elif op == N_SWITCH:
            (enc, has_legit, no_arm_msg, not_legit_msg, address,
             setcmd) = pool[code[pc + 1]]
            v = force_temp(pop())
            if setcmd >= 0:
                known, cmsg, caddr = pool[setcmd]
                _emit_setcmd(asm, bind, known, cmsg, caddr, v,
                             emit_flag_raise)
            asm.w("if _con: _cch += 1")
            if enc[0] == "dense":
                _, base, dense, default = enc
                tref = bind(tuple(dense), "_T")
                i = asm.temp()
                asm.w(f"{i} = {v} - {base}")
                asm.w(f"_pc = {tref}[{i}] if 0 <= {i} < {len(dense)} "
                      f"else {default}")
            else:
                _, keys, vals, default = enc
                kref = bind(tuple(keys), "_T")
                vref = bind(tuple(vals), "_T")
                i = asm.temp()
                asm.w(f"{i} = _bisect({kref}, {v})")
                asm.w(f"_pc = {vref}[{i}] if {i} < {len(keys)} "
                      f"and {kref}[{i}] == {v} else {default}")
            asm.w("if _pc == -1:")
            asm.indent += 1
            emit_flag_raise("_SC", "unobserved-arm",
                            f"{no_arm_msg!r} % {v}", str(address))
            asm.indent -= 1
            if has_legit:
                asm.w("if _con: _cch += 1")
                asm.w("if _pc == -2:")
                asm.indent += 1
                emit_flag_raise("_SC", "unobserved-arm",
                                f"{not_legit_msg!r} % {v}", str(address))
                asm.indent -= 1
            asm.w("continue")
            pc += 2
        elif op == N_CALL:
            entry, np_, nl, cont, dest = pool[code[pc + 1]]
            nargs = code[pc + 2]
            args = [pop() for _ in range(nargs)][::-1]
            spill_pending()
            padded = (args + ["_MISS"] * np_)[:np_]
            asm.w(f"_stack.append((_env, _par, {cont}, {dest}))")
            asm.w(f"_par = ({', '.join(padded)}{',' if padded else ''})")
            asm.w(f"_env = [_UNDEF] * {nl}")
            asm.w(f"_pc = {entry}")
            asm.w("continue")
            pc += 3
        elif op == N_ICALL_PRE:
            (off, end, signed, bits, legit, by_addr, msg,
             address) = pool[code[pc + 1]]
            asm.w("if _ion: _ich += 1")
            t = asm.temp()
            asm.w(f"{t} = {_state_load_expr(off, end, signed, bits)}")
            lref = bind(legit, "_L")
            asm.w(f"if {t} not in {lref}:")
            asm.indent += 1
            emit_flag_raise("_SI", "illegal-target", f"{msg!r} % {t}",
                            str(address))
            asm.indent -= 1
            f = asm.temp()
            aref = bind(dict(by_addr), "_A")
            asm.w(f"{f} = {aref}.get({t})")
            asm.w(f"if {f} is None:")
            asm.indent += 1
            asm.w("raise _WalkStop(True)")
            asm.indent -= 1
            push(f)
            pc += 2
        elif op == N_ICALL:
            nargs, cont, dest = code[pc + 1], code[pc + 2], code[pc + 3]
            args = [pop() for _ in range(nargs)][::-1]
            f = pop()
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = ({', '.join(args)}{',' if args else ''})")
            asm.w(f"_stack.append((_env, _par, {cont}, {dest}))")
            np_ = asm.temp()
            asm.w(f"{np_} = _FNP[{f}]")
            asm.w(f"_par = ({t} + _MISSPAD)[:{np_}]")
            asm.w(f"_env = [_UNDEF] * _FNL[{f}]")
            asm.w(f"_pc = _FENT[{f}]")
            asm.w("continue")
            pc += 4
        elif op == N_UNTRAINED:
            msg, address = pool[code[pc + 1]]
            emit_flag_raise("_SC", "unobserved-path", repr(msg),
                            str(address))
            pc += 2
        elif op == N_RET0:
            asm.w("if not _stack:")
            asm.indent += 1
            if batched:
                asm.w("_rv = 0")
                asm.w("break")
            else:
                asm.w("return 0")
            asm.indent -= 1
            asm.w("_env, _par, _pc, _d = _stack.pop()")
            asm.w("if _d >= 0:")
            asm.indent += 1
            asm.w("_env[_d] = 0")
            asm.indent -= 1
            asm.w("continue")
            pc += 1
        elif op == N_RETV:
            v = pop()
            asm.w(f"_rv = {v}")
            asm.w("if not _stack:")
            asm.indent += 1
            asm.w("break" if batched else "return _rv")
            asm.indent -= 1
            asm.w("_env, _par, _pc, _d = _stack.pop()")
            asm.w("if _d >= 0:")
            asm.indent += 1
            asm.w("_env[_d] = _rv")
            asm.indent -= 1
            asm.w("continue")
            pc += 1
        elif op == N_NONBTD:
            asm.w(f"raise CheckerError({pool[code[pc + 1]]!r})")
            pc += 2
        else:
            raise CheckerError(f"bad opcode {op} at pc {pc}")

    if stack:
        raise CheckerError("unbalanced expression stack lowering spec")

    # The batched frame is built once per spec generation and amortized
    # over every round of every batch, so it can afford a much larger
    # inlining budget: fewer dispatch-tree descents per walk.
    _inline_goto_tails(blocks,
                       _INLINE_BUDGET_BATCH if batched else _INLINE_BUDGET)
    if batched:
        _wrap_self_loops(blocks)

    out = _Asm()
    if batched:
        # The generated frame IS the batch driver: plan lookup, report
        # construction, walk, verdict, commit/rollback and bookkeeping
        # all run as locals of one frame — the per-round Python driver
        # that dominates small-round overhead disappears entirely.
        out.w("def _walk_batch(w, _rounds, _ctx):")
        out.indent += 1
        # One prologue for the batch, not per round.
        out.w("_pon = w.param_on; _ion = w.ijump_on; _con = w.cond_on")
        out.w("_maxb = w.checker.max_walk_blocks")
        out.w("_sdata = w.state.memory.data")
        out.w("_res = w.oracle.resolve")
        out.w("(_plans, _policy, _mode, _unknown, _make_src,")
        out.w(" _hist_append, _reports_append, _tel, _clk,")
        out.w(" _cbc, _csc) = _ctx")
        out.w("_plans_get = _plans.get")
        out.w("_committed = _bytes(_sdata)")
        out.w("_cyc = 0")
        out.w("_t0 = 0.0")
        out.w("for _iokey, _args in _rounds:")
        out.indent += 1
        out.w("_plan = _plans_get(_iokey)")
        out.w("if _plan is None:")
        out.indent += 1
        out.w("_unknown(_iokey)")
        out.w("continue")
        out.indent -= 1
        out.w("_pc, _np, _nl = _plan")
        out.w("if len(_args) == _np:")
        out.indent += 1
        out.w("_par = _args if type(_args) is tuple else tuple(_args)")
        out.indent -= 1
        out.w("else:")
        out.indent += 1
        out.w("_par = (tuple(_args) + _MISSPAD)[:_np]")
        out.indent -= 1
        out.w("_report = _CR(io_key=_iokey)")
        out.w("_report.policy = _policy")
        out.w("w.report = _report")
        out.w("if _tel is not None:")
        out.indent += 1
        out.w("_t0 = _clk()")
        out.indent -= 1
        out.w("_env = [_UNDEF] * _nl")
        out.w("_blk = 0; _dsd = 0; _pch = 0; _ich = 0; _cch = 0")
        out.w("_cmd = None; _addr = 0")
        out.w("_stack = []")
        out.w("_rv = None; _err = None")
        out.w("try:")
        out.indent += 1
        out.w("while True:")
        out.indent += 1
        _emit_dispatch(out, blocks, 0, len(blocks))
        out.indent -= 2
        out.w("except _WalkStop as _e:")
        out.indent += 1
        out.w("_err = _e")
        out.indent -= 1
        out.w("except CheckerError as _e:")
        out.indent += 1
        out.w("_err = _e")
        out.indent -= 1
        out.w("_report.blocks_walked = _blk")
        out.w("_report.dsod_stmts_executed = _dsd")
        out.w("_report.param_checks = _pch")
        out.w("_report.indirect_checks = _ich")
        out.w("_report.conditional_checks = _cch")
        out.w("if _err is not None:")
        out.indent += 1
        out.w("if _err.__class__ is _WalkStop:")
        out.indent += 1
        out.w("_report.incomplete = _err.incomplete")
        out.indent -= 1
        out.w("else:")
        out.indent += 1
        out.w('_flag(w, _SC, "sync-failure", str(_err), _addr)')
        out.indent -= 2
        out.w("_anoms = _report.anomalies")
        out.w("_act = _ALLOW if not _anoms else _decide(_anoms, _mode)")
        out.w("_report.action = _act")
        out.w("_cyc += int(_blk * _cbc + _dsd * _csc)")
        out.w("_hist_append(_report)")
        out.w("if _act is _ALLOW and not _report.incomplete:")
        out.indent += 1
        out.w("_committed = _bytes(_sdata)")
        out.indent -= 1
        out.w("else:")
        out.indent += 1
        out.w("_sdata[:] = _committed")
        out.indent -= 1
        out.w("_report.bind_final_state(_make_src(_committed))")
        out.w("_reports_append(_report)")
        out.w("if _tel is not None:")
        out.indent += 1
        out.w("_tel.record_round(_report, _clk() - _t0)")
        out.indent -= 2
        out.w("return _cyc")
        out.indent -= 1
        fname = "_walk_batch"
        tag = f"<es-bytecode-batch:{bspec.device}>"
    else:
        out.w("def _walk(w, _pc, _par, _env):")
        out.indent += 1
        out.w("_blk = 0; _dsd = 0; _pch = 0; _ich = 0; _cch = 0")
        out.w("_cmd = None; _addr = 0")
        out.w("_pon = w.param_on; _ion = w.ijump_on; _con = w.cond_on")
        out.w("_maxb = w.checker.max_walk_blocks")
        out.w("_sdata = w.state.memory.data")
        out.w("_res = w.oracle.resolve")
        out.w("_stack = []")
        out.w("try:")
        out.indent += 1
        out.w("while True:")
        out.indent += 1
        _emit_dispatch(out, blocks, 0, len(blocks))
        out.indent -= 2
        out.w("finally:")
        out.indent += 1
        out.w("w.blocks = _blk; w.dsod = _dsd; w.pchecks = _pch")
        out.w("w.ichecks = _ich; w.cchecks = _cch")
        out.w("w.current_address = _addr; w.current_cmd = _cmd")
        out.indent -= 2
        fname = "_walk"
        tag = f"<es-bytecode:{bspec.device}>"

    source = "\n".join(out.lines) + "\n"
    base_keys = set(_base_consts(bspec))
    namespace: Dict[str, Any] = dict(consts)
    exec(compile(source, tag, "exec"), namespace)
    walk = namespace[fname]
    walk._bytecode_source = source
    walk._bytecode_consts = {k: v for k, v in consts.items()
                             if k not in base_keys}
    return walk


_GOTO_TAIL = __import__("re").compile(r"^_pc = (\d+)$")

#: Cap on a block's line count after tail inlining.  Keeps the source
#: (and CPython compile time) linear in the spec while still collapsing
#: the straight-line Goto / one-sided-branch chains that dominate walks.
_INLINE_BUDGET = 400

#: The batched frame trades source size for dispatch savings; its cost
#: is paid once per spec generation (and cached in the registry).
_INLINE_BUDGET_BATCH = 1600


def _inline_goto_tails(blocks: List[List[str]],
                       budget: int = _INLINE_BUDGET) -> None:
    """Splice statically-known successors into their predecessors.

    A block ending in ``_pc = K`` / ``continue`` (a ``Goto`` or the
    trained side of a one-sided branch) pays a full dispatch-tree
    descent per transfer.  Replacing that tail with a copy of block K's
    body keeps execution inside one trace until the next *dynamic*
    transfer — the block's semantic prologue (address, watchdog,
    command gate) rides along in the copy, so observables are
    untouched.  Every block stays in the dispatch tree for its other
    predecessors; self-loops and cycles stop the splice.
    """
    for i, lines in enumerate(blocks):
        visited = {i}
        while (len(lines) >= 2 and lines[-1] == "continue"
               and len(lines) < budget):
            match = _GOTO_TAIL.match(lines[-2])
            if match is None:
                break
            target = int(match.group(1))
            if target in visited:
                break
            visited.add(target)
            lines[-2:] = list(blocks[target])


def _wrap_self_loops(blocks: List[List[str]]) -> None:
    """Turn dispatch-level self-loops into native Python loops.

    After tail inlining, a trained loop collapses into one block whose
    tail is ``_pc = <itself>`` / ``continue`` — and every iteration
    still pays a full dispatch-tree descent to get back to it.  In the
    batched frame (only), such a block is wrapped in its own
    ``while True:``: the back-edge becomes a plain ``continue`` and the
    loop body re-executes without touching the dispatch tree at all.

    Inside the wrapped body, control statements are re-targeted:

    * ``continue`` (a dispatch jump to another block) → ``break`` out
      of the inner loop, then the trailing ``continue`` re-enters the
      dispatch with ``_pc`` already set;
    * ``break`` (a batched round-exit) → ``_pc = -1`` + ``break``; the
      trailing ``if _pc == -1: break`` propagates the round exit.

    Observables (counters, flags, shadow stores, anomaly addresses) are
    byte-for-byte those of the dispatch-driven execution.
    """
    for i, lines in enumerate(blocks):
        target = f"_pc = {i}"
        if not any(a.strip() == target and b.strip() == "continue"
                   for a, b in zip(lines, lines[1:])):
            continue
        body: List[str] = []
        for line in lines:
            stripped = line.strip()
            indent = line[:len(line) - len(stripped)]
            if stripped == "continue":
                if body and body[-1].strip() == f"_pc = {i}":
                    # The self back-edge: drop the pc store, loop
                    # natively.
                    body.pop()
                    body.append(indent + "continue")
                else:
                    body.append(indent + "break")
            elif stripped == "break":
                body.append(indent + "_pc = -1")
                body.append(indent + "break")
            else:
                body.append(line)
        blocks[i] = (["while True:"]
                     + ["    " + line for line in body]
                     + ["if _pc == -1:", "    break", "continue"])


def _emit_setcmd(asm: _Asm, bind, known, msg: str, address: int,
                 value: str, emit_flag_raise) -> None:
    """Inline command-decision resolution (Algorithm 1's cmd table)."""
    asm.w("if _con: _cch += 1")
    kref = bind(known, "_K")
    asm.w(f"if {value} not in {kref}:")
    asm.indent += 1
    emit_flag_raise("_SC", "unknown-command", f"{msg!r} % {value}",
                    str(address))
    asm.indent -= 1
    asm.w(f"_cmd = {value}")


def _emit_dispatch(out: _Asm, blocks: List[List[str]],
                   lo: int, hi: int) -> None:
    if hi - lo == 1:
        for line in blocks[lo]:
            out.w(line)
        return
    mid = (lo + hi) // 2
    out.w(f"if _pc < {mid}:")
    out.indent += 1
    _emit_dispatch(out, blocks, lo, mid)
    out.indent -= 1
    out.w("else:")
    out.indent += 1
    _emit_dispatch(out, blocks, mid, hi)
    out.indent -= 1


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lower_spec(spec: ExecutionSpec) -> BytecodeSpec:
    """Lower the whole spec to flat arrays (unassembled)."""
    return _SpecLowerer(spec).lower()


def bytecode_spec_for(spec: ExecutionSpec) -> BytecodeSpec:
    """Lower + assemble once per spec object, shared by every checker
    deployed on it — mirrors :func:`compiled_spec_for`."""
    cached = getattr(spec, "_bytecode_backend", None)
    if cached is None:
        cached = lower_spec(spec).assemble()
        spec._bytecode_backend = cached
    return cached
