"""Sync-point resolution (Section V-D at runtime).

Two kinds of sync variables appear in a specification:

* ``field:NAME``           — a control-structure field outside the device
  state; resolved from the live structure just before the I/O executes;
* ``extern:FUNC:LOCAL``    — the result of a host-helper call; resolved by
  *speculation*: the device is run against a snapshot of its control
  structure and the extern results are harvested in order, so the real
  device still only executes after every check has passed (a strengthening
  of the paper's interleaved scheme, documented in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import CheckerError
from repro.interp.sinks import TraceSink
from repro.ir import StateMemory


class SyncOracle:
    """Interface: resolve one sync variable occurrence."""

    def resolve(self, name: str) -> int:
        raise CheckerError(f"sync variable {name!r} cannot be resolved "
                           f"by {type(self).__name__}")


class NullSyncOracle(SyncOracle):
    """Refuses everything — for specs without sync points."""


class MappingSyncOracle(SyncOracle):
    """Fixed values per name (tests / replay)."""

    def __init__(self, values: Dict[str, int]):
        self._values = dict(values)

    def resolve(self, name: str) -> int:
        try:
            return self._values[name]
        except KeyError:
            raise CheckerError(f"no sync value for {name!r}") from None


class FieldSyncOracle(SyncOracle):
    """Resolves ``field:NAME`` from a live control structure.

    Field geometry is immutable per layout, so each resolved name
    caches its (offset, end, wrap) triple: repeat resolutions — the
    checker hot path issues them every sync point — skip the layout
    lookup and read the backing store directly.
    """

    def __init__(self, memory: StateMemory,
                 fallback: Optional[SyncOracle] = None):
        self._memory = memory
        self._fallback = fallback
        self._cache: Dict[str, Tuple[int, int, Optional[object]]] = {}

    def resolve(self, name: str) -> int:
        hit = self._cache.get(name)
        if hit is not None:
            off, end, wrap = hit
            raw = int.from_bytes(self._memory.data[off:end], "little")
            return wrap(raw).value if wrap is not None else raw
        if name.startswith("field:"):
            field = name[len("field:"):]
            value = self._memory.read_field(field)
            decl = self._memory.layout.field(field)
            wrap = (decl.type.wrap
                    if getattr(decl.type, "signed", False) else None)
            self._cache[name] = (decl.offset, decl.end, wrap)
            return value
        if self._fallback is not None:
            return self._fallback.resolve(name)
        return super().resolve(name)


class ExternHarvestSink(TraceSink):
    """Trace sink that queues extern results during a speculative run."""

    def __init__(self) -> None:
        self.queues: Dict[str, Deque[int]] = {}

    def on_extern(self, caller: str, func: str, dest, args: Tuple[int, ...],
                  result: int) -> None:
        if dest is not None:
            key = f"extern:{caller}:{dest}"
            self.queues.setdefault(key, deque()).append(result)


class QueueSyncOracle(SyncOracle):
    """Pops harvested extern results in order; falls back for fields."""

    def __init__(self, queues: Dict[str, Deque[int]],
                 fallback: Optional[SyncOracle] = None):
        self._queues = queues
        self._fallback = fallback

    def resolve(self, name: str) -> int:
        if name.startswith("extern:"):
            queue = self._queues.get(name)
            if queue:
                return queue.popleft()
            raise CheckerError(
                f"speculation produced no value for {name!r} (checker and "
                f"device paths diverged)")
        if self._fallback is not None:
            return self._fallback.resolve(name)
        return super().resolve(name)
