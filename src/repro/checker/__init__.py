"""ES-Checker: runtime enforcement of execution specifications."""

from repro.checker.anomalies import (
    ALL_STRATEGIES, Action, Anomaly, CheckReport, Mode, Strategy,
    decide_action,
)
from repro.checker.bounds import (
    BoundTable, BoundViolation, BufferBound, ScalarBound, audit_reports,
    scan,
)
from repro.checker.compile import CompiledSpec, compiled_spec_for
from repro.checker.degrade import (
    DEFAULT_DEGRADATION, INFRA_EXCEPTIONS, DegradationConfig,
    DegradationPolicy, gap_report, retrain_reason, run_with_policy,
)
from repro.checker.escheck import (
    BACKENDS, CHECK_BLOCK_COST, CHECK_STMT_COST, ESChecker,
)
from repro.checker.response import (
    Alert, AlertLevel, AlertManager, Checkpoint, DeviceQuarantine,
    ResponsePolicy, RollbackManager, classify,
)
from repro.checker.sync import (
    ExternHarvestSink, FieldSyncOracle, MappingSyncOracle, NullSyncOracle,
    QueueSyncOracle, SyncOracle,
)

__all__ = [
    "ALL_STRATEGIES", "Action", "Anomaly", "CheckReport", "Mode",
    "Strategy", "decide_action",
    "BACKENDS", "CHECK_BLOCK_COST", "CHECK_STMT_COST",
    "BoundTable", "BoundViolation", "BufferBound", "ScalarBound",
    "audit_reports", "scan",
    "CompiledSpec", "ESChecker", "compiled_spec_for",
    "DEFAULT_DEGRADATION", "INFRA_EXCEPTIONS", "DegradationConfig",
    "DegradationPolicy", "gap_report", "retrain_reason",
    "run_with_policy",
    "Alert", "AlertLevel", "AlertManager", "Checkpoint",
    "DeviceQuarantine", "ResponsePolicy", "RollbackManager", "classify",
    "ExternHarvestSink", "FieldSyncOracle", "MappingSyncOracle",
    "NullSyncOracle", "QueueSyncOracle", "SyncOracle",
]
