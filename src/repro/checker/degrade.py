"""Degradation policies: what a check means when the checker itself fails.

SEDSpec must decide *before* the device executes, which assumes the
enforcement pipeline is healthy.  Real pipelines are not: Intel PT drops
packets under load, decode fails on corrupt buffers, a checker walk can
hit a transient fault.  A :class:`DegradationPolicy` makes the outcome of
those *infrastructure* failures explicit instead of an unhandled
exception with undefined enforcement semantics:

* **fail-closed** (default) — the round is not vouched for; surface an
  explicit :data:`Action.TRACE_GAP` outcome.  The request is refused as
  an infrastructure failure — emphatically *not* a detection, so it never
  feeds security quarantine.
* **fail-open** — allow the round but stamp the report ``trace_gap`` so
  audits can separate degraded allows from vetted ones.
* **retry** — re-run the check up to ``max_retries`` extra attempts
  (transient faults clear on replay); exhausting the budget falls back
  to fail-closed.

Every :class:`CheckReport` records the policy in force, degraded or not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from typing import Optional

from repro.errors import DecodeError, InfraError, TraceError
from repro.checker.anomalies import Action, CheckReport, Strategy

#: Exceptions that mean "the machinery failed", never "the guest is bad".
INFRA_EXCEPTIONS = (InfraError, DecodeError, TraceError)


class DegradationPolicy(enum.Enum):
    FAIL_CLOSED = "fail-closed"
    FAIL_OPEN = "fail-open"
    RETRY = "retry"


@dataclass(frozen=True)
class DegradationConfig:
    policy: DegradationPolicy = DegradationPolicy.FAIL_CLOSED
    #: extra attempts granted by the RETRY policy before failing closed
    max_retries: int = 2

    @property
    def attempts(self) -> int:
        if self.policy is DegradationPolicy.RETRY:
            return 1 + max(0, self.max_retries)
        return 1


DEFAULT_DEGRADATION = DegradationConfig()


def gap_report(io_key: str, config: DegradationConfig,
               reason: str) -> CheckReport:
    """The explicit TRACE_GAP outcome for a round the machinery lost."""
    report = CheckReport(io_key=io_key)
    report.policy = config.policy.value
    report.trace_gap = True
    report.gap_reason = reason
    if config.policy is DegradationPolicy.FAIL_OPEN:
        report.action = Action.ALLOW
    else:
        report.action = Action.TRACE_GAP
    return report


def retrain_reason(report: CheckReport) -> Optional[str]:
    """Why this round is a candidate training trace (None: it is not).

    The spec lifecycle's feedback loop: rounds the machinery could not
    vouch for (trace gaps), rounds whose walk left the specification
    (incomplete — the classic coverage hole), and *near misses* — rounds
    flagged only by the control-flow strategies, which is exactly how an
    unseen-but-legitimate behaviour manifests (the paper's §VIII false
    positive) — are worth re-observing in training.  Rounds with a
    PARAMETER violation are excluded: corrupted device state must never
    become training data.
    """
    if report.trace_gap or report.action is Action.TRACE_GAP:
        return "trace-gap"
    if report.incomplete:
        return "incomplete-walk"
    if report.anomalies and all(a.strategy is not Strategy.PARAMETER
                                for a in report.anomalies):
        return "near-miss"
    return None


def run_with_policy(config: DegradationConfig, io_key: str,
                    attempt: Callable[[int], CheckReport]) -> CheckReport:
    """Drive *attempt* under the policy.

    *attempt(n)* performs one check (n = 0-based attempt index) and may
    raise an infrastructure exception; any other exception propagates
    untouched (genuine bugs must stay loud).  The returned report always
    carries ``policy``.
    """
    last: str = ""
    for n in range(config.attempts):
        try:
            report = attempt(n)
        except INFRA_EXCEPTIONS as exc:
            last = f"{type(exc).__name__}: {exc}"
            continue
        report.policy = config.policy.value
        if n and not report.trace_gap:
            report.gap_reason = f"recovered after {n} retr" + \
                ("y" if n == 1 else "ies")
        return report
    return gap_report(io_key, config, last or "check failed")
