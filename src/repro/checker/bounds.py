"""Precomputed per-command parameter bound tables (batched audit).

Both fast checker backends enforce parameter bounds *inline* at each
store site — the bytecode lowering bakes the declared ``lo <= v <= hi``
constants straight into the dispatch loop — because stop-at-first-
violation ordering is part of the backend contract and deferring the
comparison would reorder anomalies relative to the reference walker.

This module is the *batch* side of the same tables.  ``BoundTable``
precomputes, per I/O command (entry key), every parameter-bound site
reachable from that command's handler: scalar stores with their
declared integer range, buffer stores with their declared length.
``scan`` then audits a stream of recorded ``(io_key, field, value)``
samples against the table in one pass — no spec walk, no shadow state —
and ``audit_reports`` re-audits the final shadow-state dumps of a
checker session.  A violation here on a session the online checker
passed means either a checker bug or a tampered report stream, which is
exactly what an offline audit exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SpecError
from repro.ir import (
    BufStore, BufType, Call, FuncPtrType, ICall, IntType, StateStore,
)
from repro.spec.escfg import ExecutionSpec

FUNCPTR_LO, FUNCPTR_HI = 0, (1 << 64) - 1


@dataclass(frozen=True)
class ScalarBound:
    """One scalar store site: the declared range of the stored field."""

    field: str
    lo: int
    hi: int
    address: int        # ES block the store lives in

    def admits(self, value: int) -> bool:
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class BufferBound:
    """One buffer store site: the declared element count of the buffer."""

    buf: str
    length: int
    address: int

    def admits(self, index: int) -> bool:
        return 0 <= index < self.length


@dataclass(frozen=True)
class BoundViolation:
    """One sample that falls outside its declared bounds."""

    io_key: str
    field: str
    value: int
    lo: int
    hi: int
    address: int = 0

    def __str__(self) -> str:
        return (f"{self.io_key}: {self.field}={self.value} outside "
                f"[{self.lo}, {self.hi}] (site {self.address:#x})")


class BoundTable:
    """Per-command bound tables, precomputed once from a spec.

    ``commands`` maps each trained entry key to the bound sites
    reachable from its handler (direct calls followed transitively,
    indirect calls resolved through the spec's legitimised targets).
    ``field_bounds`` is the command-independent union: the declared
    range of every device-state parameter any site stores to.
    """

    __slots__ = ("device", "commands", "buffer_sites", "field_bounds")

    def __init__(self, device: str,
                 commands: Dict[str, Tuple[ScalarBound, ...]],
                 buffer_sites: Dict[str, Tuple[BufferBound, ...]],
                 field_bounds: Dict[str, Tuple[int, int]]):
        self.device = device
        self.commands = commands
        self.buffer_sites = buffer_sites
        self.field_bounds = field_bounds

    # -- construction --------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: ExecutionSpec) -> "BoundTable":
        layout = spec.layout
        if layout is None:
            raise SpecError(
                f"spec for {spec.device!r} carries no state layout")

        # Block address -> owning function, for resolving icall targets.
        addr_owner: Dict[int, str] = {}
        for func in spec.functions.values():
            for block in func.blocks.values():
                addr_owner[block.address] = func.name

        def declared_range(field: str) -> Optional[Tuple[int, int]]:
            decl = layout.field(field)
            if isinstance(decl.type, FuncPtrType):
                return FUNCPTR_LO, FUNCPTR_HI
            if isinstance(decl.type, IntType):
                return decl.type.min_value, decl.type.max_value
            return None

        # Per-function site lists, computed once and shared by every
        # command whose call graph reaches the function.
        fn_scalars: Dict[str, List[ScalarBound]] = {}
        fn_buffers: Dict[str, List[BufferBound]] = {}
        fn_callees: Dict[str, set] = {}
        for func in spec.functions.values():
            scalars: List[ScalarBound] = []
            buffers: List[BufferBound] = []
            callees: set = set()
            for block in func.blocks.values():
                for stmt in block.dsod:
                    if isinstance(stmt, StateStore):
                        rng = declared_range(stmt.field)
                        if rng is not None:
                            scalars.append(ScalarBound(
                                stmt.field, rng[0], rng[1],
                                block.address))
                    elif isinstance(stmt, BufStore):
                        decl = layout.field(stmt.buf)
                        if isinstance(decl.type, BufType):
                            buffers.append(BufferBound(
                                stmt.buf, decl.type.length,
                                block.address))
                nbtd = block.nbtd
                if isinstance(nbtd, Call):
                    callees.add(nbtd.func)
                elif isinstance(nbtd, ICall):
                    for target in spec.legit_icall_targets(
                            block.address):
                        owner = addr_owner.get(target)
                        if owner is not None:
                            callees.add(owner)
            fn_scalars[func.name] = scalars
            fn_buffers[func.name] = buffers
            fn_callees[func.name] = callees

        def reachable(entry: str) -> List[str]:
            seen, work = set(), [entry]
            while work:
                name = work.pop()
                if name in seen or name not in spec.functions:
                    continue
                seen.add(name)
                work.extend(fn_callees.get(name, ()))
            return sorted(seen)

        commands: Dict[str, Tuple[ScalarBound, ...]] = {}
        buffer_sites: Dict[str, Tuple[BufferBound, ...]] = {}
        for io_key, handler in spec.entry_handlers.items():
            names = reachable(handler)
            commands[io_key] = tuple(
                site for name in names for site in fn_scalars[name])
            buffer_sites[io_key] = tuple(
                site for name in names for site in fn_buffers[name])

        field_bounds: Dict[str, Tuple[int, int]] = {}
        for sites in commands.values():
            for site in sites:
                field_bounds.setdefault(site.field, (site.lo, site.hi))
        return cls(spec.device, commands, buffer_sites, field_bounds)

    # -- queries -------------------------------------------------------------

    def sites_for(self, io_key: str) -> Tuple[ScalarBound, ...]:
        return self.commands.get(io_key, ())

    def check_value(self, io_key: str, field: str,
                    value: int) -> Optional[BoundViolation]:
        """One sample against the command's table (None if admitted).

        A field the command's handler never stores to has no bound site
        and is admitted: the table audits stores, not arbitrary state.
        """
        for site in self.commands.get(io_key, ()):
            if site.field == field and not site.admits(value):
                return BoundViolation(io_key, field, value, site.lo,
                                      site.hi, site.address)
        return None


def scan(table: BoundTable,
         samples: Iterable[Tuple[str, str, int]]) -> List[BoundViolation]:
    """Batch-audit recorded ``(io_key, field, value)`` samples.

    One pass over the samples with per-command field indexes built
    lazily — the comparison itself is two integer tests per sample.
    """
    indexes: Dict[str, Dict[str, ScalarBound]] = {}
    violations: List[BoundViolation] = []
    for io_key, field, value in samples:
        index = indexes.get(io_key)
        if index is None:
            # First site wins when a command stores the same field at
            # several sites, matching check_value's iteration order —
            # the two entry points must attribute the same address.
            index = {}
            for site in table.commands.get(io_key, ()):
                index.setdefault(site.field, site)
            indexes[io_key] = index
        site = index.get(field)
        if site is not None and not (site.lo <= value <= site.hi):
            violations.append(BoundViolation(
                io_key, field, value, site.lo, site.hi, site.address))
    return violations


def audit_reports(table: BoundTable, reports,
                  by_epoch: Optional[Dict[int, BoundTable]] = None
                  ) -> List[BoundViolation]:
    """Re-audit a checker session's final shadow-state dumps.

    Every scalar parameter value a passed round left in the shadow
    state must sit inside the field's declared range — the inline
    checks guarantee it online, so any violation found here indicates
    checker malfunction or post-hoc tampering with the report stream.

    A session that crossed a spec hot reload holds reports produced
    under *different* declared layouts; auditing them all against one
    table turns every range the reload narrowed into a false tampering
    verdict.  Reports are stamped with the spec epoch they ran under,
    so pass ``by_epoch`` (epoch -> that generation's table) and each
    report is judged against the table of its own epoch; *table* stays
    the fallback for epochs the mapping does not cover.
    """
    violations: List[BoundViolation] = []
    for report in reports:
        current = table
        if by_epoch is not None:
            current = by_epoch.get(
                getattr(report, "spec_epoch", 0), table)
        for field, value in report.final_state.items():
            bounds = current.field_bounds.get(field)
            if bounds is not None and not (
                    bounds[0] <= value <= bounds[1]):
                violations.append(BoundViolation(
                    report.io_key, field, value, bounds[0], bounds[1]))
    return violations
