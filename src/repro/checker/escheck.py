"""ES-Checker: the runtime proxy enforcing an execution specification.

For every I/O interaction the checker *simulates* the device's execution
over the ES-CFG and its shadow device state — before the real device sees
the request — applying the enabled check strategies:

* **parameter check** at every DSOD store/load touching device-state
  parameters (integer overflow via declared type ranges, buffer overflow
  via declared buffer geometry);
* **indirect-jump check** at every NBTD funcptr call (target must be one
  the training runs legitimised);
* **conditional-jump check** at every NBTD branch/switch (one-sided
  branches must stay one-sided; dispatch arms and command access must have
  been observed).

If no strategy fires, the checker guarantees the upcoming real execution
complies with the specification and lets the device run; otherwise the
working mode decides between halting and warning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import CheckerError, DeviceFault, SpecError
from repro.interp.machine import eval_binop, eval_unop
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const, Expr,
    Goto, ICall, Intrinsic, Local, Param, Return, StateMemory, StateRef,
    StateStore, Switch, SyncVar, UnOp,
)
from repro.checker.anomalies import (
    ALL_STRATEGIES, Action, Anomaly, CheckReport, Mode, Strategy,
    decide_action,
)
from repro.checker.degrade import DEFAULT_DEGRADATION, DegradationConfig
from repro.checker.compile import (
    _WalkContext, _WalkStop, compiled_spec_for,
)
from repro.checker.sync import NullSyncOracle, SyncOracle
from repro.spec.escfg import ESBlock, ESFunction, ExecutionSpec

#: Cost model: walking one ES block / executing one DSOD statement is
#: cheaper than the device's own work — the checker runs straight-line
#: loads/stores over a flat shadow struct with no MemoryRegion dispatch,
#: no DMA address translation, and a reduced graph.  Charged as half a
#: device statement each; these constants feed the performance model.
CHECK_BLOCK_COST = 0.5
CHECK_STMT_COST = 0.5

BACKENDS = ("compiled", "reference", "bytecode")


@dataclass
class _Frame:
    func: ESFunction
    env: Dict[str, int] = field(default_factory=dict)
    params: Dict[str, int] = field(default_factory=dict)


class ESChecker:
    """Enforces one device's execution specification."""

    def __init__(self, spec: ExecutionSpec, mode: Mode = Mode.ENHANCEMENT,
                 strategies: FrozenSet[Strategy] = ALL_STRATEGIES,
                 max_walk_blocks: int = 500_000,
                 backend: str = "compiled",
                 degradation: Optional[DegradationConfig] = None,
                 recorder=None):
        if backend not in BACKENDS:
            raise CheckerError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.spec = spec
        self.mode = mode
        self.degradation = degradation or DEFAULT_DEGRADATION
        self.strategies = frozenset(strategies)
        self.max_walk_blocks = max_walk_blocks
        self.backend = backend
        self._compiled = (compiled_spec_for(spec)
                          if backend == "compiled" else None)
        if backend == "bytecode":
            from repro.checker.bytecode import bytecode_spec_for
            self._bytecode = bytecode_spec_for(spec)
        else:
            self._bytecode = None
        self.device_state = spec.make_device_state()
        self._batch_plans: Optional[Dict[str, Tuple[int, int, int]]] = None
        self.cycles = 0
        #: anomaly history across the session (for FPR accounting)
        self.history: List[CheckReport] = []
        # Telemetry is opt-in per checker: no recorder, no cost beyond
        # one None test per round (see repro.telemetry.recorder).
        self._telemetry = None
        self._telemetry_cache = None
        self._clock = None
        if recorder is not None:
            self.set_recorder(recorder)

    def set_recorder(self, recorder) -> None:
        """Attach (or, with ``None``, detach) a telemetry recorder.

        Metric handles resolve against the recorder and re-attaching the
        same recorder reuses the cached instrument bundle, so toggling
        telemetry resumes accumulating into the same counters.
        """
        if recorder is None:
            self._telemetry = None
            self._clock = None
            return
        cached = self._telemetry_cache
        if cached is not None and cached[0] is recorder:
            self._telemetry = cached[1]
        else:
            from repro.telemetry.instruments import CheckerTelemetry
            self._telemetry = CheckerTelemetry(recorder, self.spec.device,
                                               self.backend)
            self._telemetry_cache = (recorder, self._telemetry)
        self._clock = recorder.clock

    # -- lifecycle -----------------------------------------------------------

    def boot_sync(self, memory: StateMemory) -> None:
        """Initialize the shadow device state from the control structure
        (done once, at device boot — Section V-A.1)."""
        self.device_state.sync_from(memory)

    def resync(self, memory: StateMemory) -> None:
        """Optional fidelity knob: re-align shadow state with the device.

        The paper-faithful configuration never calls this after boot; the
        ablation benchmarks use it to quantify shadow-state drift.
        """
        self.device_state.sync_from(memory)

    # -- the check entry point ---------------------------------------------------

    def check_io(self, io_key: str, args: Tuple[int, ...] = (),
                 oracle: Optional[SyncOracle] = None) -> CheckReport:
        """Simulate one I/O round over the ES-CFG and report anomalies."""
        telemetry = self._telemetry
        if telemetry is None:
            return self._check_io(io_key, args, oracle)
        clock = self._clock
        start = clock()
        report = self._check_io(io_key, args, oracle)
        telemetry.record_round(report, clock() - start)
        return report

    def _check_io(self, io_key: str, args: Tuple[int, ...],
                  oracle: Optional[SyncOracle]) -> CheckReport:
        report = CheckReport(io_key=io_key)
        report.policy = self.degradation.policy.value
        oracle = oracle or NullSyncOracle()

        handler = self.spec.entry_handlers.get(io_key)
        if handler is None or not self.spec.has_function(handler):
            self._flag(report, Strategy.CONDITIONAL_JUMP, "unknown-io-key",
                       f"I/O interface {io_key!r} never used in training",
                       0)
            self._finish(report)
            return report

        # Walk on a scratch copy: only a clean round updates the state.
        scratch = self.device_state.clone()
        if self._bytecode is not None:
            walker = _WalkContext(self, report, scratch, oracle)
            run = lambda: self._bytecode.run(         # noqa: E731
                walker, handler, args)
        elif self._compiled is not None:
            walker = _WalkContext(self, report, scratch, oracle)
            run = lambda: self._compiled.run(         # noqa: E731
                walker, self._compiled.funcs[handler], args)
        else:
            walker = _Walker(self, report, scratch, oracle)
            run = lambda: walker.run(                 # noqa: E731
                self.spec.entry_for(io_key), args)
        try:
            run()
        except _WalkStop as stop:
            report.incomplete = stop.incomplete
        except CheckerError as exc:
            # Unresolvable sync values mean the checker cannot vouch for
            # the round; surface it as an irregular-operation anomaly.
            self._flag(report, Strategy.CONDITIONAL_JUMP, "sync-failure",
                       str(exc), walker.current_address)

        self._finish(report)
        if report.action is Action.ALLOW and not report.incomplete:
            # The simulated final device state seeds the next round.
            self.device_state = scratch
        # Lazy: dumping is O(device state) and only eval/report readers
        # want it.  The value reflects the shadow state at *read* time —
        # read it before the next resync if exactness matters.
        report.bind_final_state(self.device_state.dump)
        return report

    # -- the batched entry -------------------------------------------------------

    def check_batch(self, rounds, oracle: Optional[SyncOracle] = None
                    ) -> List[CheckReport]:
        """Check a queue of I/O rounds through a single checker
        invocation (the cross-round batched entry).

        ``rounds`` is any iterable of ``(io_key, args)`` pairs — a
        list, or a generator streaming straight out of the trace
        decoder.  The returned reports are byte-identical to running
        :meth:`check_io` once per round in the same order: same
        anomalies, counters, actions, history entries, committed
        shadow state, and per-round final states.

        On the bytecode backend all rounds share one generated frame
        entry: the strategy toggles, shadow buffer, sync oracle and
        the spec-specialized dispatch tables are set up once per
        batch.  The other backends have no batched frame and fall
        back to per-round checking, which keeps parity trivially.
        """
        if self._bytecode is None:
            return [self.check_io(key, args, oracle=oracle)
                    for key, args in rounds]
        return self._check_batch_bytecode(rounds, oracle)

    def _batch_plans_for(self) -> Dict[str, Tuple[int, int, int]]:
        """io_key → (entry pc, nparams, nlocals) for the batched frame.

        Built once per checker (the spec is fixed at construction);
        io_keys absent here take the unknown-io-key path.
        """
        plans = self._batch_plans
        if plans is None:
            bspec = self._bytecode
            spec = self.spec
            plans = {key: bspec._entry[handler]
                     for key, handler in spec.entry_handlers.items()
                     if spec.has_function(handler)}
            self._batch_plans = plans
        return plans

    def _check_batch_bytecode(self, rounds,
                              oracle: Optional[SyncOracle]
                              ) -> List[CheckReport]:
        walk_batch = self._bytecode.batch_walk()
        oracle = oracle or NullSyncOracle()
        reports: List[CheckReport] = []

        # One scratch per batch; commits become byte snapshots of the
        # shadow buffer, replicating check_io's per-round clone/commit
        # object dance at memcpy cost.  Rounds that do not commit roll
        # the buffer back to the last committed snapshot (the generated
        # frame owns that loop — see ``_assemble_spec(batched=True)``).
        scratch = self.device_state.clone()
        walker = _WalkContext(self, None, scratch, oracle)
        telemetry = self._telemetry

        # Final states rebuild lazily through a shared view clone, so a
        # committed snapshot stays frozen exactly like the superseded
        # state object a per-round commit leaves behind.  The view is
        # itself lazy: the hot path never dumps.
        viewbox: List = []

        def make_src(snap: bytes):
            def dump():
                if not viewbox:
                    viewbox.append(scratch.clone())
                view = viewbox[0]
                view.memory.data[:] = snap
                return view.dump()
            return dump

        def unknown(io_key: str) -> None:
            # Rare path, mirrored from _check_io: nothing walks, the
            # shadow buffer is untouched, final_state stays unbound.
            clock = self._clock
            t0 = clock() if telemetry is not None else 0.0
            report = CheckReport(io_key=io_key)
            report.policy = policy_val
            self._flag(report, Strategy.CONDITIONAL_JUMP,
                       "unknown-io-key",
                       f"I/O interface {io_key!r} never used in "
                       f"training", 0)
            self._finish(report)
            reports.append(report)
            if telemetry is not None:
                telemetry.record_round(report, clock() - t0)

        # The degradation policy is sampled once per batch: policy hot
        # reloads land at op boundaries, never inside a batch.
        policy_val = self.degradation.policy.value
        ctx = (self._batch_plans_for(), policy_val, self.mode,
               unknown, make_src, self.history.append, reports.append,
               telemetry, self._clock,
               CHECK_BLOCK_COST, CHECK_STMT_COST)
        self.cycles += walk_batch(walker, rounds, ctx)
        # The scratch buffer now equals the last committed snapshot:
        # adopt it, exactly as the last per-round commit would have.
        self.device_state = scratch
        return reports

    # -- internals --------------------------------------------------------------

    def _finish(self, report: CheckReport) -> None:
        report.action = decide_action(report.anomalies, self.mode)
        self.cycles += int(report.blocks_walked * CHECK_BLOCK_COST
                           + report.dsod_stmts_executed * CHECK_STMT_COST)
        self.history.append(report)

    def enabled(self, strategy: Strategy) -> bool:
        return strategy in self.strategies

    def _flag(self, report: CheckReport, strategy: Strategy, kind: str,
              message: str, block_address: int) -> bool:
        """Record an anomaly if its strategy is enabled.  Returns whether
        the anomaly was recorded (i.e. the strategy is active)."""
        if strategy not in self.strategies:
            return False
        report.anomalies.append(Anomaly(
            strategy=strategy, kind=kind, message=message,
            block_address=block_address, io_key=report.io_key))
        return True


class _Walker:
    """One I/O round's simulation over the ES-CFG."""

    def __init__(self, checker: ESChecker, report: CheckReport,
                 state, oracle: SyncOracle):
        self.checker = checker
        self.spec = checker.spec
        self.report = report
        self.state = state
        self.oracle = oracle
        self.current_address = 0
        self.current_cmd: Optional[int] = None
        self.blocks = 0
        # Check counts track *enabled* strategies only (a disabled
        # strategy's sites are traversed but not enforced).
        self.param_on = Strategy.PARAMETER in checker.strategies
        self.ijump_on = Strategy.INDIRECT_JUMP in checker.strategies
        self.cond_on = Strategy.CONDITIONAL_JUMP in checker.strategies

    # -- driving ------------------------------------------------------------

    def run(self, func: ESFunction, args: Tuple[int, ...]) -> Optional[int]:
        frame = _Frame(func, params=dict(zip(func.params, args)))
        label = func.entry
        stack: List[Tuple[_Frame, str, Optional[str]]] = []
        while True:
            block = self._resolve_block(frame.func, label)
            self._exec_block(frame, block)
            nbtd = block.nbtd
            if isinstance(nbtd, Goto):
                label = nbtd.target
            elif isinstance(nbtd, Branch):
                label = self._branch(frame, block, nbtd)
            elif isinstance(nbtd, Switch):
                label = self._switch(frame, block, nbtd)
            elif isinstance(nbtd, Call):
                callee = self._callee(block, nbtd.func)
                cargs = tuple(self._eval(frame, a) for a in nbtd.args)
                stack.append((frame, nbtd.cont, nbtd.dest))
                frame = _Frame(callee, params=dict(zip(callee.params,
                                                       cargs)))
                label = callee.entry
            elif isinstance(nbtd, ICall):
                callee = self._icall(frame, block, nbtd)
                cargs = tuple(self._eval(frame, a) for a in nbtd.args)
                stack.append((frame, nbtd.cont, nbtd.dest))
                frame = _Frame(callee, params=dict(zip(callee.params,
                                                       cargs)))
                label = callee.entry
            elif isinstance(nbtd, Return):
                value = (self._eval(frame, nbtd.value)
                         if nbtd.value is not None else 0)
                if not stack:
                    return value
                frame, label, dest = stack.pop()
                if dest is not None:
                    frame.env[dest] = value
            else:
                raise CheckerError(f"ES block {block.label} has no NBTD")

    def _resolve_block(self, func: ESFunction, label: str) -> ESBlock:
        try:
            block = func.block(label)
        except SpecError:
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "unobserved-path",
                f"transition into {func.name}:{label} was never observed "
                f"in training", self.current_address)
            raise _WalkStop(incomplete=not recorded)
        self.current_address = block.address
        self.blocks += 1
        self.report.blocks_walked += 1
        if self.blocks > self.checker.max_walk_blocks:
            self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "walk-watchdog",
                "specification walk exceeded block budget",
                self.current_address)
            raise _WalkStop()
        self._command_gate(block)
        return block

    # -- command access control ----------------------------------------------

    def _command_gate(self, block: ESBlock) -> None:
        """Block-entry gate: the command access table (Algorithm 1's
        ``cmd_act``) must allow this block under the current command."""
        if block.is_cmd_end:
            self.current_cmd = None
        if self.current_cmd is None or block.is_cmd_decision:
            return
        if self.cond_on:
            self.report.conditional_checks += 1
        if not self.spec.cmd_access.allows(self.current_cmd,
                                           block.address):
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "command-access",
                f"block {block.address:#x} is not accessible under "
                f"command {self.current_cmd:#x}", block.address)
            raise _WalkStop(incomplete=not recorded)

    def _set_command(self, block: ESBlock, cmd: int) -> None:
        """A command-decision point resolved: derive the accessible-block
        subgraph (reject commands training never saw)."""
        if self.cond_on:
            self.report.conditional_checks += 1
        if not self.spec.cmd_access.knows(cmd):
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "unknown-command",
                f"command {cmd:#x} never observed in training",
                block.address)
            raise _WalkStop(incomplete=not recorded)
        self.current_cmd = cmd

    # -- DSOD execution + parameter check ---------------------------------------

    def _exec_block(self, frame: _Frame, block: ESBlock) -> Optional[int]:
        for stmt in block.dsod:
            self.report.dsod_stmts_executed += 1
            if isinstance(stmt, Assign):
                frame.env[stmt.target] = self._eval(frame, stmt.value)
            elif isinstance(stmt, StateStore):
                value = self._eval(frame, stmt.value)
                self._param_check_store(block, stmt.field, value)
                self.state.write_field(stmt.field, value)
            elif isinstance(stmt, BufStore):
                index = self._eval(frame, stmt.index)
                value = self._eval(frame, stmt.value)
                if _index_is_state_derived(stmt.index):
                    self._param_check_index(block, stmt.buf, index, "write")
                try:
                    # Flat-layout shadow: near-OOB corrupts the same
                    # neighbour the real device would (prediction!).
                    self.state.write_buf(stmt.buf, index, value)
                except DeviceFault:
                    # Far OOB with the parameter check disabled: the
                    # shadow cannot follow, walk ends unresolved.
                    raise _WalkStop(incomplete=True) from None
            elif isinstance(stmt, Intrinsic):
                if stmt.kind == "command_decision" and stmt.args:
                    self._set_command(block,
                                      self._eval(frame, stmt.args[0]))
                elif stmt.kind == "command_end":
                    self.current_cmd = None
            else:
                raise CheckerError(
                    f"unexpected DSOD statement {type(stmt).__name__}")
        return None

    def _param_check_store(self, block: ESBlock, field_name: str,
                           value: int) -> None:
        """Integer-overflow arm of the parameter check (UBSan-inspired:
        declared type metadata + the would-be overflow)."""
        if not self.param_on:
            return
        self.report.param_checks += 1
        if not self.state.in_range(field_name, value):
            type_name = str(self.state.layout.field(field_name).type)
            self.checker._flag(
                self.report, Strategy.PARAMETER, "integer-overflow",
                f"storing {value} into dev.{field_name} ({type_name}) "
                f"overflows its declared range", block.address)
            raise _WalkStop()

    def _param_check_index(self, block: ESBlock, buf: str, index: int,
                           direction: str) -> None:
        """Buffer-overflow arm of the parameter check."""
        if not self.param_on:
            return
        self.report.param_checks += 1
        if not self.state.index_in_bounds(buf, index):
            self.checker._flag(
                self.report, Strategy.PARAMETER, "buffer-overflow",
                f"{direction} at dev.{buf}[{index}] is outside the "
                f"buffer's {self.state.buffer_length(buf)} elements",
                block.address)
            raise _WalkStop()

    # -- NBTD checks ---------------------------------------------------------------

    def _branch(self, frame: _Frame, block: ESBlock,
                nbtd: Branch) -> str:
        outcome = bool(self._eval(frame, nbtd.cond))
        one_sided = self.spec.branch_is_one_sided(block.address)
        if one_sided is not None and self.cond_on:
            self.report.conditional_checks += 1
        if one_sided is not None and outcome != one_sided:
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP,
                "unobserved-branch",
                f"branch at {block.address:#x} took its "
                f"never-trained side ({'taken' if outcome else 'not taken'})",
                block.address)
            raise _WalkStop(incomplete=not recorded)
        return nbtd.taken if outcome else nbtd.not_taken

    def _switch(self, frame: _Frame, block: ESBlock,
                nbtd: Switch) -> str:
        value = self._eval(frame, nbtd.scrutinee)
        if block.is_cmd_decision:
            # Auto-detected dispatch: the scrutinee names the command.
            self._set_command(block, value)
        if self.cond_on:
            self.report.conditional_checks += 1
        label = nbtd.table.get(value, nbtd.default)
        if not label:
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "unobserved-arm",
                f"switch at {block.address:#x} has no arm for {value}",
                block.address)
            raise _WalkStop(incomplete=not recorded)
        target_block = frame.func.blocks.get(label)
        legit = self.spec.legit_switch_targets(block.address)
        if legit and self.cond_on:
            self.report.conditional_checks += 1
        if legit and (target_block is None
                      or target_block.address not in legit):
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "unobserved-arm",
                f"switch arm for {value} at {block.address:#x} was never "
                f"observed in training", block.address)
            raise _WalkStop(incomplete=not recorded)
        return label

    def _callee(self, block: ESBlock, name: str) -> ESFunction:
        if not self.spec.has_function(name):
            recorded = self.checker._flag(
                self.report, Strategy.CONDITIONAL_JUMP, "unobserved-path",
                f"call into {name}, which no training run executed",
                block.address)
            raise _WalkStop(incomplete=not recorded)
        return self.spec.function(name)

    def _icall(self, frame: _Frame, block: ESBlock,
               nbtd: ICall) -> ESFunction:
        """Indirect-jump check: the pointer must target a block the
        specification knows to be legitimate for this site."""
        if self.ijump_on:
            self.report.indirect_checks += 1
        ptr = self.state.read_field(nbtd.ptr_field)
        legit = self.spec.legit_icall_targets(block.address)
        if ptr not in legit:
            recorded = self.checker._flag(
                self.report, Strategy.INDIRECT_JUMP, "illegal-target",
                f"dev.{nbtd.ptr_field} points at {ptr:#x}, not a "
                f"legitimate target of this call site", block.address)
            raise _WalkStop(incomplete=not recorded)
        callee_name = self.spec.addr_to_func.get(ptr)
        if callee_name is None or not self.spec.has_function(callee_name):
            # Target legitimised but its body never trained — cannot
            # simulate further.
            raise _WalkStop(incomplete=True)
        return self.spec.function(callee_name)

    # -- expression evaluation (with parameter check on loads) -----------------------

    def _eval(self, frame: _Frame, expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Param):
            try:
                return frame.params[expr.name]
            except KeyError:
                raise CheckerError(
                    f"missing I/O parameter {expr.name!r}") from None
        if isinstance(expr, Local):
            try:
                return frame.env[expr.name]
            except KeyError:
                raise CheckerError(
                    f"ES local {expr.name!r} undefined (slice gap)"
                ) from None
        if isinstance(expr, StateRef):
            return self.state.read_field(expr.field)
        if isinstance(expr, BufLoad):
            index = self._eval(frame, expr.index)
            # Reads through device-state indices are checked too.
            if _index_is_state_derived(expr.index):
                block = _FakeBlock(self.current_address)
                self._param_check_index(block, expr.buf, index, "read")
            try:
                return self.state.read_buf(expr.buf, index)
            except DeviceFault:
                raise _WalkStop(incomplete=True) from None
        if isinstance(expr, BufLen):
            return expr.length
        if isinstance(expr, SyncVar):
            return self.oracle.resolve(expr.name)
        if isinstance(expr, BinOp):
            return eval_binop(expr.op, self._eval(frame, expr.left),
                              self._eval(frame, expr.right))
        if isinstance(expr, UnOp):
            return eval_unop(expr.op, self._eval(frame, expr.operand))
        raise CheckerError(f"cannot evaluate {type(expr).__name__}")


def _index_is_state_derived(index: Expr) -> bool:
    """The paper's parameter-check scope: the buffer-overflow arm fires
    only when *a device state index parameter* addresses the buffer.
    Indices held in temporary locals (CVE-2015-7504's case) are outside
    the strategy's reach — that CVE is the indirect-jump check's job.
    Constant indices are checked too (free and false-positive-proof)."""
    if isinstance(index, Const):
        return True
    return bool(index.state_refs())


@dataclass
class _FakeBlock:
    """Address carrier for anomaly reports raised during expression eval."""

    address: int
