"""Anomaly handling beyond halt-or-warn (Section VIII, "Anomaly Defence").

The paper's discussion lists three avenues it leaves to future work; all
three are implemented here:

* **rollback** — restore the device (and its shadow) to a checkpoint
  taken before the exploitation;
* **targeted termination** — quarantine only the offending device
  instead of the whole VM;
* **alert levels** — classify responses by the violated strategy
  (parameter-check findings are never false positives, so they rank
  highest).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.checker.anomalies import Anomaly, CheckReport, Strategy
from repro.devices.base import Device
from repro.ir import StateMemory


class AlertLevel(enum.IntEnum):
    """Severity ordering for operator alert streams."""

    INFO = 0          # incomplete walks, telemetry
    WARNING = 1       # conditional-jump findings (may be rare-but-legit)
    SEVERE = 2        # indirect-jump findings (control flow at stake)
    CRITICAL = 3      # parameter-check findings (never false positives)


STRATEGY_LEVELS: Dict[Strategy, AlertLevel] = {
    Strategy.CONDITIONAL_JUMP: AlertLevel.WARNING,
    Strategy.INDIRECT_JUMP: AlertLevel.SEVERE,
    Strategy.PARAMETER: AlertLevel.CRITICAL,
}


def classify(anomaly: Anomaly) -> AlertLevel:
    return STRATEGY_LEVELS[anomaly.strategy]


@dataclass
class Alert:
    level: AlertLevel
    anomaly: Anomaly
    round_index: int

    def __str__(self) -> str:
        return f"[{self.level.name}] round {self.round_index}: " \
               f"{self.anomaly}"


class AlertManager:
    """Collects classified alerts; the operator-facing stream."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []
        self._round = 0

    def next_round(self) -> None:
        self._round += 1

    def ingest(self, report: CheckReport) -> List[Alert]:
        fresh = [Alert(classify(a), a, self._round)
                 for a in report.anomalies]
        self.alerts.extend(fresh)
        return fresh

    def worst(self) -> Optional[AlertLevel]:
        if not self.alerts:
            return None
        return max(alert.level for alert in self.alerts)

    def at_level(self, level: AlertLevel) -> List[Alert]:
        return [a for a in self.alerts if a.level is level]


@dataclass
class Checkpoint:
    """A device restore point: control structure + IRQ line level."""

    round_index: int
    memory: StateMemory
    irq_level: int


class RollbackManager:
    """Periodic device checkpoints + restore-on-anomaly.

    Checkpoints are cheap (one control-structure copy); a ring buffer
    keeps the most recent *depth* of them.  ``rollback`` restores the
    newest checkpoint strictly older than the poisoned round, so the
    device resumes from a state the exploitation never touched.
    """

    def __init__(self, device: Device, interval: int = 16,
                 depth: int = 8):
        if interval <= 0 or depth <= 0:
            raise ValueError("interval and depth must be positive")
        self.device = device
        self.interval = interval
        self.checkpoints: Deque[Checkpoint] = deque(maxlen=depth)
        self.rounds = 0
        self.rollbacks = 0
        self.checkpoint()   # boot state is always restorable

    def on_round(self) -> None:
        self.rounds += 1
        if self.rounds % self.interval == 0:
            self.checkpoint()

    def checkpoint(self) -> Checkpoint:
        snap = Checkpoint(self.rounds, self.device.snapshot(),
                          self.device.irq_line.level
                          if hasattr(self.device, "irq_line") else 0)
        self.checkpoints.append(snap)
        return snap

    def rollback(self, before_round: Optional[int] = None) -> Checkpoint:
        """Restore the newest checkpoint older than *before_round*
        (default: the newest available)."""
        if not self.checkpoints:
            raise RuntimeError("no checkpoint available")
        candidates = [c for c in self.checkpoints
                      if before_round is None
                      or c.round_index < before_round]
        if not candidates:
            candidates = [self.checkpoints[0]]
        chosen = candidates[-1]
        self.device.state.restore(chosen.memory)
        self.device.halted = False
        self.device.fault = None
        self.rollbacks += 1
        return chosen


@dataclass
class QuarantineState:
    device_name: str
    reason: str
    round_index: int


class DeviceQuarantine:
    """Targeted termination: fence off one device, keep the VM alive."""

    def __init__(self) -> None:
        self.quarantined: Dict[str, QuarantineState] = {}

    def quarantine(self, device: Device, reason: str,
                   round_index: int = 0) -> None:
        device.halted = True
        self.quarantined[device.NAME] = QuarantineState(
            device.NAME, reason, round_index)

    def release(self, device: Device) -> None:
        device.halted = False
        device.fault = None
        self.quarantined.pop(device.NAME, None)

    def is_quarantined(self, device_name: str) -> bool:
        return device_name in self.quarantined


class ResponsePolicy:
    """Combines the three mechanisms into one anomaly-response policy.

    * CRITICAL  -> rollback the device to a pre-exploit checkpoint and
      quarantine it for operator attention;
    * SEVERE    -> rollback only;
    * WARNING   -> alert only.
    """

    def __init__(self, device: Device,
                 rollback: Optional[RollbackManager] = None):
        self.device = device
        self.alerts = AlertManager()
        self.rollback = rollback or RollbackManager(device)
        self.quarantine = DeviceQuarantine()

    def on_clean_round(self) -> None:
        self.alerts.next_round()
        self.rollback.on_round()

    def on_report(self, report: CheckReport) -> List[Alert]:
        self.alerts.next_round()
        fresh = self.alerts.ingest(report)
        worst = max((a.level for a in fresh), default=None)
        if worst is None:
            self.rollback.on_round()
            return fresh
        if worst >= AlertLevel.SEVERE:
            self.rollback.rollback()
        if worst is AlertLevel.CRITICAL:
            self.quarantine.quarantine(
                self.device, str(fresh[-1].anomaly),
                round_index=self.rollback.rounds)
        return fresh
