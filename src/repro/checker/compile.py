"""Closure compiler for execution specifications: the ES-Checker's fast
backend.

The reference :class:`~repro.checker.escheck._Walker` re-dispatches on IR
node types for every DSOD statement of every I/O round, and re-derives
every check table (one-sided-branch verdicts, legitimate icall/switch
targets, command-access rows) through ``self.spec.*`` lookups per site per
round.  This module lowers the whole spec once, at spec load:

* every DSOD expression/statement and every NBTD becomes a pre-dispatched
  closure (zero ``isinstance`` tests on the walk);
* every check table is resolved per site at compile time — the branch
  check captures its one-sided verdict, the indirect-jump and switch
  checks capture ``frozenset`` rows, the command gate captures the
  inverted command-access row for its block, and the parameter check
  captures the declared range predicate and type name per field.

What stays runtime-dynamic, deliberately: the enabled strategy set (one
compiled spec serves checkers with different strategy configurations — the
ablation benches rely on that), the sync oracle, and the scratch shadow
state, all carried by the per-round :class:`_WalkContext`.

Anomaly messages, counter values, and stop semantics replicate the
reference walker bit-for-bit; ``tests/checker/test_backend_diff.py``
holds both backends to that across all five devices and every CVE PoC.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CheckerError, DeviceFault
from repro.checker.anomalies import Anomaly, Strategy
from repro.interp.ops import binop_fn, unop_fn
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const, Expr,
    FuncPtrType, Goto, ICall, Intrinsic, IntType, Local, Param, Return,
    StateRef, StateStore, Stmt, Switch, SyncVar, UnOp,
)
from repro.spec.escfg import ESBlock, ESFunction, ExecutionSpec

#: ``(w, env, params) -> int`` over a :class:`_WalkContext`.
ExprFn = Callable[..., int]

#: NBTD result tags: a plain ``str`` is the next label; tuples carry
#: call/return transfers for the driver's explicit stack.
_CALL = "c"
_RET = "r"


class _WalkStop(Exception):
    """Internal: the walk cannot or need not continue.

    Duplicated from :mod:`repro.checker.escheck` (which imports *this*
    module) — the checker catches both via a shared tuple alias.
    """

    def __init__(self, incomplete: bool = False):
        self.incomplete = incomplete


class _WalkContext:
    """Per-round mutable state threaded through the compiled closures."""

    __slots__ = ("checker", "report", "state", "oracle", "strategies",
                 "param_on", "ijump_on", "cond_on", "current_address",
                 "current_cmd", "blocks", "dsod", "pchecks", "ichecks",
                 "cchecks")

    def __init__(self, checker, report, state, oracle):
        self.checker = checker
        self.report = report
        self.state = state
        self.oracle = oracle
        self.strategies = checker.strategies
        self.param_on = Strategy.PARAMETER in checker.strategies
        self.ijump_on = Strategy.INDIRECT_JUMP in checker.strategies
        self.cond_on = Strategy.CONDITIONAL_JUMP in checker.strategies
        self.current_address = 0
        self.current_cmd: Optional[int] = None
        self.blocks = 0
        self.dsod = 0
        # Check-site executions per enabled strategy; flushed into the
        # report with the walk counters (mirrors the reference walker's
        # direct report increments).
        self.pchecks = 0
        self.ichecks = 0
        self.cchecks = 0


def _flag(w: _WalkContext, strategy: Strategy, kind: str, message: str,
          address: int) -> bool:
    """Record an anomaly if its strategy is enabled (mirrors
    ``ESChecker._flag``)."""
    if strategy not in w.strategies:
        return False
    w.report.anomalies.append(Anomaly(
        strategy=strategy, kind=kind, message=message,
        block_address=address, io_key=w.report.io_key))
    return True


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def _compile_expr(expr: Expr, spec: ExecutionSpec,
                  block_address: int) -> ExprFn:
    """Lower one ES expression; *block_address* anchors anomaly reports
    (the reference walker's ``current_address`` equals the executing
    block's address throughout that block's DSOD and NBTD)."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda w, env, params: value
    if isinstance(expr, Param):
        name = expr.name

        def run_param(w, env, params):
            try:
                return params[name]
            except KeyError:
                raise CheckerError(
                    f"missing I/O parameter {name!r}") from None
        return run_param
    if isinstance(expr, Local):
        name = expr.name

        def run_local(w, env, params):
            try:
                return env[name]
            except KeyError:
                raise CheckerError(
                    f"ES local {name!r} undefined (slice gap)") from None
        return run_local
    if isinstance(expr, StateRef):
        return _compile_state_read(expr.field, spec)
    if isinstance(expr, BufLoad):
        return _compile_buf_load(expr, spec, block_address)
    if isinstance(expr, BufLen):
        length = expr.length
        return lambda w, env, params: length
    if isinstance(expr, SyncVar):
        name = expr.name
        return lambda w, env, params: w.oracle.resolve(name)
    if isinstance(expr, BinOp):
        fn = binop_fn(expr.op)
        left = _compile_expr(expr.left, spec, block_address)
        right = _compile_expr(expr.right, spec, block_address)
        if isinstance(expr.left, Const) and isinstance(expr.right, Const):
            try:
                folded = fn(expr.left.value, expr.right.value)
            except DeviceFault:
                pass    # div0 must stay a runtime fault
            else:
                return lambda w, env, params: folded
        return lambda w, env, params: fn(left(w, env, params),
                                         right(w, env, params))
    if isinstance(expr, UnOp):
        fn = unop_fn(expr.op)
        operand = _compile_expr(expr.operand, spec, block_address)
        return lambda w, env, params: fn(operand(w, env, params))
    kind = type(expr).__name__

    def run_unknown(w, env, params):
        raise CheckerError(f"cannot evaluate {kind}")
    return run_unknown


def _compile_state_read(field_name: str, spec: ExecutionSpec) -> ExprFn:
    """Specialized shadow-state scalar load (offsets fixed at compile)."""
    decl = spec.layout.field(field_name)
    if decl.is_buffer:
        return lambda w, env, params: w.state.read_field(field_name)
    off, end = decl.offset, decl.end
    if isinstance(decl.type, IntType) and decl.type.signed:
        half = 1 << (decl.type.bits - 1)
        modulus = 1 << decl.type.bits

        def run_signed(w, env, params):
            raw = int.from_bytes(w.state.memory.data[off:end], "little")
            return raw - modulus if raw >= half else raw
        return run_signed
    return lambda w, env, params: int.from_bytes(
        w.state.memory.data[off:end], "little")


def _index_is_state_derived(index: Expr) -> bool:
    """The paper's parameter-check scope (same rule as the reference
    walker): constant indices and device-state-derived indices are in
    scope; temporary-local cursors are the indirect-jump check's job."""
    if isinstance(index, Const):
        return True
    return bool(index.state_refs())


def _compile_buf_load(expr: BufLoad, spec: ExecutionSpec,
                      block_address: int) -> ExprFn:
    buf = expr.buf
    index_fn = _compile_expr(expr.index, spec, block_address)
    decl = spec.layout.field(buf)
    length = decl.type.length
    # Flat-layout load, fully specialized: base offset and element
    # geometry are compile-time constants; leaving the struct entirely
    # (the reference path's DeviceFault) becomes a direct _WalkStop.
    base, esize = decl.offset, decl.type.elem.size
    struct_size = spec.layout.size
    signed = decl.type.elem.signed
    half = 1 << (decl.type.elem.bits - 1)
    modulus = 1 << decl.type.elem.bits
    checked = _index_is_state_derived(expr.index)

    def run_load(w, env, params):
        index = index_fn(w, env, params)
        if checked and w.param_on:
            w.pchecks += 1
            if not 0 <= index < length:
                _flag(w, Strategy.PARAMETER, "buffer-overflow",
                      f"read at dev.{buf}[{index}] is outside the "
                      f"buffer's {length} elements", block_address)
                raise _WalkStop()
        off = base + index * esize
        if off < 0 or off + esize > struct_size:
            # Far OOB: the shadow cannot follow (segfault analogue).
            raise _WalkStop(incomplete=True)
        raw = int.from_bytes(w.state.memory.data[off:off + esize],
                             "little")
        if signed and raw >= half:
            return raw - modulus
        return raw
    return run_load


# ---------------------------------------------------------------------------
# DSOD statements
# ---------------------------------------------------------------------------

def _compile_set_command(spec: ExecutionSpec,
                         block_address: int) -> Callable[..., None]:
    """Command-decision resolution with the known-command row frozen."""
    known = spec.cmd_access.known_commands()

    def set_command(w, cmd):
        if w.cond_on:
            w.cchecks += 1
        if cmd not in known:
            recorded = _flag(
                w, Strategy.CONDITIONAL_JUMP, "unknown-command",
                f"command {cmd:#x} never observed in training",
                block_address)
            raise _WalkStop(incomplete=not recorded)
        w.current_cmd = cmd
    return set_command


def _compile_dsod_stmt(stmt: Stmt, spec: ExecutionSpec,
                       block: ESBlock) -> Callable[..., None]:
    address = block.address

    if isinstance(stmt, Assign):
        target = stmt.target
        value_fn = _compile_expr(stmt.value, spec, address)

        def run_assign(w, env, params):
            w.dsod += 1
            env[target] = value_fn(w, env, params)
        return run_assign

    if isinstance(stmt, StateStore):
        field_name = stmt.field
        value_fn = _compile_expr(stmt.value, spec, address)
        decl = spec.layout.field(field_name)
        type_name = str(decl.type)
        if isinstance(decl.type, FuncPtrType):
            lo, hi = 0, (1 << 64) - 1
        elif isinstance(decl.type, IntType):
            lo, hi = decl.type.min_value, decl.type.max_value
        else:
            # Malformed spec (store to a buffer field): defer to the
            # shadow state's own SpecError, like the reference walker.
            def run_store_malformed(w, env, params):
                w.dsod += 1
                value = value_fn(w, env, params)
                if w.param_on:
                    w.pchecks += 1
                    if not w.state.in_range(field_name, value):
                        raise AssertionError("unreachable")
                w.state.write_field(field_name, value)
            return run_store_malformed

        # Stored bytes are the value modulo 2**bits little-endian for
        # every scalar type (two's complement), so the store compiles
        # to one masked to_bytes — no wrap object, no layout lookup.
        off, end, size = decl.offset, decl.end, decl.size
        mask = (1 << (size * 8)) - 1

        def run_store(w, env, params):
            w.dsod += 1
            value = value_fn(w, env, params)
            if w.param_on:
                w.pchecks += 1
                if not lo <= value <= hi:
                    _flag(w, Strategy.PARAMETER, "integer-overflow",
                          f"storing {value} into dev.{field_name} "
                          f"({type_name}) overflows its declared range",
                          address)
                    raise _WalkStop()
            w.state.memory.data[off:end] = (value & mask).to_bytes(
                size, "little")
        return run_store

    if isinstance(stmt, BufStore):
        buf = stmt.buf
        index_fn = _compile_expr(stmt.index, spec, address)
        value_fn = _compile_expr(stmt.value, spec, address)
        checked = _index_is_state_derived(stmt.index)
        decl = spec.layout.field(buf)
        length = decl.type.length
        base, esize = decl.offset, decl.type.elem.size
        struct_size = spec.layout.size
        emask = (1 << (esize * 8)) - 1

        def run_bufstore(w, env, params):
            w.dsod += 1
            index = index_fn(w, env, params)
            value = value_fn(w, env, params)
            if checked and w.param_on:
                w.pchecks += 1
                if not 0 <= index < length:
                    _flag(w, Strategy.PARAMETER, "buffer-overflow",
                          f"write at dev.{buf}[{index}] is outside the "
                          f"buffer's {length} elements", address)
                    raise _WalkStop()
            # Flat-layout shadow: near-OOB corrupts the same neighbour
            # the real device would (prediction!).  Leaving the struct
            # entirely with the check disabled is the segfault analogue:
            # the shadow cannot follow, walk ends unresolved.
            off = base + index * esize
            if off < 0 or off + esize > struct_size:
                raise _WalkStop(incomplete=True)
            w.state.memory.data[off:off + esize] = (
                value & emask).to_bytes(esize, "little")
        return run_bufstore

    if isinstance(stmt, Intrinsic):
        if stmt.kind == "command_decision" and stmt.args:
            cmd_fn = _compile_expr(stmt.args[0], spec, address)
            set_command = _compile_set_command(spec, address)

            def run_decision(w, env, params):
                w.dsod += 1
                set_command(w, cmd_fn(w, env, params))
            return run_decision
        if stmt.kind == "command_end":
            def run_end(w, env, params):
                w.dsod += 1
                w.current_cmd = None
            return run_end

        def run_noop(w, env, params):
            w.dsod += 1
        return run_noop

    kind = type(stmt).__name__

    def run_unknown(w, env, params):
        w.dsod += 1
        raise CheckerError(f"unexpected DSOD statement {kind}")
    return run_unknown


# ---------------------------------------------------------------------------
# NBTD terminators
# ---------------------------------------------------------------------------

def _compile_nbtd(block: ESBlock, func: ESFunction, spec: ExecutionSpec,
                  link: Dict[str, "CompiledESFunction"]):
    """Lower the block's NBTD with its check tables resolved per site."""
    nbtd = block.nbtd
    address = block.address

    if isinstance(nbtd, Goto):
        target = nbtd.target
        return lambda w, env, params: target

    if isinstance(nbtd, Branch):
        cond_fn = _compile_expr(nbtd.cond, spec, address)
        taken, not_taken = nbtd.taken, nbtd.not_taken
        one_sided = spec.branch_is_one_sided(address)

        if one_sided is None:
            return lambda w, env, params: (
                taken if cond_fn(w, env, params) else not_taken)

        def run_one_sided(w, env, params):
            outcome = bool(cond_fn(w, env, params))
            if w.cond_on:
                w.cchecks += 1
            if outcome != one_sided:
                recorded = _flag(
                    w, Strategy.CONDITIONAL_JUMP, "unobserved-branch",
                    f"branch at {address:#x} took its never-trained "
                    f"side ({'taken' if outcome else 'not taken'})",
                    address)
                raise _WalkStop(incomplete=not recorded)
            return taken if outcome else not_taken
        return run_one_sided

    if isinstance(nbtd, Switch):
        scrut_fn = _compile_expr(nbtd.scrutinee, spec, address)
        table = dict(nbtd.table)
        default = nbtd.default
        legit = spec.frozen_switch_targets(address)
        addr_of = {lbl: b.address for lbl, b in func.blocks.items()}
        is_cmd_decision = block.is_cmd_decision
        set_command = (_compile_set_command(spec, address)
                       if is_cmd_decision else None)

        def run_switch(w, env, params):
            value = scrut_fn(w, env, params)
            if is_cmd_decision:
                # Auto-detected dispatch: the scrutinee names the command.
                set_command(w, value)
            if w.cond_on:
                w.cchecks += 1
            label = table.get(value, default)
            if not label:
                recorded = _flag(
                    w, Strategy.CONDITIONAL_JUMP, "unobserved-arm",
                    f"switch at {address:#x} has no arm for {value}",
                    address)
                raise _WalkStop(incomplete=not recorded)
            if legit:
                if w.cond_on:
                    w.cchecks += 1
                if addr_of.get(label) not in legit:
                    recorded = _flag(
                        w, Strategy.CONDITIONAL_JUMP, "unobserved-arm",
                        f"switch arm for {value} at {address:#x} was "
                        f"never observed in training", address)
                    raise _WalkStop(incomplete=not recorded)
            return label
        return run_switch

    if isinstance(nbtd, Call):
        arg_fns = tuple(_compile_expr(a, spec, address) for a in nbtd.args)
        cont, dest = nbtd.cont, nbtd.dest
        name = nbtd.func
        if not spec.has_function(name):
            def run_untrained_call(w, env, params):
                recorded = _flag(
                    w, Strategy.CONDITIONAL_JUMP, "unobserved-path",
                    f"call into {name}, which no training run executed",
                    address)
                raise _WalkStop(incomplete=not recorded)
            return run_untrained_call
        callee = link[name]

        def run_call(w, env, params):
            cargs = tuple(f(w, env, params) for f in arg_fns)
            return (_CALL, callee, cargs, cont, dest)
        return run_call

    if isinstance(nbtd, ICall):
        ptr_field = nbtd.ptr_field
        arg_fns = tuple(_compile_expr(a, spec, address) for a in nbtd.args)
        cont, dest = nbtd.cont, nbtd.dest
        legit = spec.frozen_icall_targets(address)
        #: addr -> compiled callee, only for legitimised+trained targets
        by_addr = {
            addr: link[fname]
            for addr, fname in ((a, spec.addr_to_func.get(a))
                                for a in legit)
            if fname is not None and fname in link
        }

        def run_icall(w, env, params):
            if w.ijump_on:
                w.ichecks += 1
            ptr = w.state.read_field(ptr_field)
            if ptr not in legit:
                recorded = _flag(
                    w, Strategy.INDIRECT_JUMP, "illegal-target",
                    f"dev.{ptr_field} points at {ptr:#x}, not a "
                    f"legitimate target of this call site", address)
                raise _WalkStop(incomplete=not recorded)
            callee = by_addr.get(ptr)
            if callee is None:
                # Target legitimised but its body never trained — cannot
                # simulate further.
                raise _WalkStop(incomplete=True)
            cargs = tuple(f(w, env, params) for f in arg_fns)
            return (_CALL, callee, cargs, cont, dest)
        return run_icall

    if isinstance(nbtd, Return):
        if nbtd.value is None:
            return lambda w, env, params: (_RET, 0)
        value_fn = _compile_expr(nbtd.value, spec, address)
        return lambda w, env, params: (_RET, value_fn(w, env, params))

    label = block.label

    def run_missing(w, env, params):
        raise CheckerError(f"ES block {label} has no NBTD")
    return run_missing


# ---------------------------------------------------------------------------
# Blocks / functions / the compiled spec
# ---------------------------------------------------------------------------

class CompiledESBlock:
    """One ES block: fused DSOD+NBTD closure plus frozen gate rows."""

    __slots__ = ("address", "is_cmd_end", "is_cmd_decision", "gate_cmds",
                 "run")

    def __init__(self, block: ESBlock, func: ESFunction,
                 spec: ExecutionSpec,
                 link: Dict[str, "CompiledESFunction"]):
        self.address = block.address
        self.is_cmd_end = block.is_cmd_end
        self.is_cmd_decision = block.is_cmd_decision
        #: inverted command-access row, resolved once at spec load
        self.gate_cmds = spec.cmd_access.commands_allowing(block.address)
        dsod_fns = [_compile_dsod_stmt(s, spec, block) for s in block.dsod]
        nbtd_fn = _compile_nbtd(block, func, spec, link)
        self.run = _chain(dsod_fns, nbtd_fn)


def _chain(dsod_fns: List[Callable], nbtd_fn):
    if not dsod_fns:
        return nbtd_fn
    fns = tuple(dsod_fns)

    def run(w, env, params):
        for fn in fns:
            fn(w, env, params)
        return nbtd_fn(w, env, params)
    return run


class CompiledESFunction:
    """Closure-compiled ES-CFG of one trained routine."""

    __slots__ = ("name", "params", "entry", "blocks")

    def __init__(self, func: ESFunction):
        self.name = func.name
        self.params = func.params
        self.entry = func.entry
        self.blocks: Dict[str, CompiledESBlock] = {}

    def _fill(self, func: ESFunction, spec: ExecutionSpec,
              link: Dict[str, "CompiledESFunction"]) -> None:
        for label, block in func.blocks.items():
            self.blocks[label] = CompiledESBlock(block, func, spec, link)


class CompiledSpec:
    """The whole execution specification, lowered to closures."""

    def __init__(self, spec: ExecutionSpec):
        # Two passes: shells first so call sites can link cyclic CFGs.
        self.funcs: Dict[str, CompiledESFunction] = {
            name: CompiledESFunction(func)
            for name, func in spec.functions.items()
        }
        for name, func in spec.functions.items():
            self.funcs[name]._fill(func, spec, self.funcs)

    def run(self, w: _WalkContext, cfunc: CompiledESFunction,
            args: Tuple[int, ...]) -> Optional[int]:
        """One I/O round's walk; counters flush even on early stops."""
        try:
            return self._run(w, cfunc, args)
        finally:
            report = w.report
            report.blocks_walked += w.blocks
            report.dsod_stmts_executed += w.dsod
            report.param_checks += w.pchecks
            report.indirect_checks += w.ichecks
            report.conditional_checks += w.cchecks

    def _run(self, w: _WalkContext, cfunc: CompiledESFunction,
             args: Tuple[int, ...]) -> Optional[int]:
        env: Dict[str, int] = {}
        params = dict(zip(cfunc.params, args))
        blocks = cfunc.blocks
        label = cfunc.entry
        stack: List[tuple] = []
        max_blocks = w.checker.max_walk_blocks
        while True:
            cblock = blocks.get(label)
            if cblock is None:
                recorded = _flag(
                    w, Strategy.CONDITIONAL_JUMP, "unobserved-path",
                    f"transition into {cfunc.name}:{label} was never "
                    f"observed in training", w.current_address)
                raise _WalkStop(incomplete=not recorded)
            w.current_address = cblock.address
            w.blocks += 1
            if w.blocks > max_blocks:
                _flag(w, Strategy.CONDITIONAL_JUMP, "walk-watchdog",
                      "specification walk exceeded block budget",
                      w.current_address)
                raise _WalkStop()
            # Command access gate (Algorithm 1's cmd_act), inverted row.
            if cblock.is_cmd_end:
                w.current_cmd = None
            cmd = w.current_cmd
            if cmd is not None and not cblock.is_cmd_decision:
                if w.cond_on:
                    w.cchecks += 1
                if cmd not in cblock.gate_cmds:
                    recorded = _flag(
                        w, Strategy.CONDITIONAL_JUMP, "command-access",
                        f"block {cblock.address:#x} is not accessible "
                        f"under command {cmd:#x}", cblock.address)
                    raise _WalkStop(incomplete=not recorded)

            result = cblock.run(w, env, params)
            if type(result) is str:
                label = result
            elif result[0] is _CALL:
                _, callee, cargs, cont, dest = result
                stack.append((env, params, blocks, cfunc, cont, dest))
                cfunc = callee
                blocks = callee.blocks
                env = {}
                params = dict(zip(callee.params, cargs))
                label = callee.entry
            else:   # _RET
                value = result[1]
                if not stack:
                    return value
                env, params, blocks, cfunc, cont, dest = stack.pop()
                label = cont
                if dest is not None:
                    env[dest] = value


def compiled_spec_for(spec: ExecutionSpec) -> CompiledSpec:
    """Compile once per spec object; shared by every checker deployed on
    it (benchmark conftests cache specs across modules, so this amortizes
    to one compile per device per session)."""
    cached = getattr(spec, "_compiled_backend", None)
    if cached is None:
        cached = CompiledSpec(spec)
        spec._compiled_backend = cached
    return cached
