"""SDHCI — SD host controller interface (QEMU ``hw/sd/sdhci.c`` analogue).

Programming model: block-size/block-count registers, a command register
issuing SD commands (single/multi block read/write), and a 32-bit-ish data
port streaming the block payload through ``fifo_buffer``.

Seeded vulnerability:

* **CVE-2021-3409** (fixed 6.0; the paper tests v5.2.0) — the guest may
  rewrite ``blksize`` *while a transfer is in flight*.  The data-port path
  computes ``blksize - data_count`` in a 16-bit quantity; with
  ``data_count`` already beyond the shrunken ``blksize`` the subtraction
  underflows (caught by the parameter check's integer-overflow arm, as in
  the paper), and the flush path indexes ``fifo_buffer`` with the stale
  cursor.
"""

from __future__ import annotations

from repro.compiler import DeviceLogic, arr, fld, ptr, reg
from repro.devices.backends import DiskImage, IRQLine
from repro.devices.base import CveGate, Device, register_device

FIFO_SIZE = 4096

# SD commands (subset).
CMD_GO_IDLE = 0
CMD_SEND_STATUS = 13
CMD_READ_SINGLE = 17
CMD_READ_MULTI = 18
CMD_WRITE_SINGLE = 24
CMD_WRITE_MULTI = 25
CMD_APP = 55          # rare in our workloads
CMD_SWITCH = 6        # rare
CMD_SEND_CID = 2
CMD_SEND_CSD = 9
CMD_STOP = 12

TRANSFER_NONE = 0
TRANSFER_READ = 1
TRANSFER_WRITE = 2


class SDHCILogic(DeviceLogic):
    """Compilable SDHCI logic."""

    STRUCT = "SDHCIState"
    FIELDS = (
        reg("blksize", "u16", doc="block size register (the CVE's knob)"),
        reg("blkcnt", "u16", doc="block count register"),
        reg("cmdreg", "u8", doc="command register"),
        reg("argreg", "u32", doc="command argument (LBA)"),
        reg("prnsts", "u32", doc="present state"),
        fld("data_count", "u16", doc="bytes moved in the current block"),
        fld("trans_remain", "u16", doc="bytes left (underflow victim)"),
        fld("transfer_mode", "u8", doc="0 none / 1 read / 2 write"),
        fld("cur_lba", "u32"),
        fld("blocks_done", "u16"),
        arr("fifo_buffer", "u8", FIFO_SIZE, doc="block staging buffer"),
        ptr("irq", doc="transfer-complete interrupt"),
        fld("irq_level", "u8"),
        fld("status", "u8"),
    )
    CONSTS = {
        "VULN_BLKSIZE": 0,
        "CMD_GO_IDLE": CMD_GO_IDLE, "CMD_SEND_STATUS": CMD_SEND_STATUS,
        "CMD_READ_SINGLE": CMD_READ_SINGLE,
        "CMD_READ_MULTI": CMD_READ_MULTI,
        "CMD_WRITE_SINGLE": CMD_WRITE_SINGLE,
        "CMD_WRITE_MULTI": CMD_WRITE_MULTI,
        "CMD_APP": CMD_APP, "CMD_SWITCH": CMD_SWITCH,
        "CMD_CID": CMD_SEND_CID, "CMD_CSD": CMD_SEND_CSD,
        "CMD_STOP": CMD_STOP,
        "T_NONE": TRANSFER_NONE, "T_READ": TRANSFER_READ,
        "T_WRITE": TRANSFER_WRITE,
        "FIFO_SIZE": FIFO_SIZE,
    }
    EXTERNS = ("disk_read", "disk_write", "set_irq")
    ENTRIES = {
        "pmio:write:0": "write_blksize",
        "pmio:write:1": "write_blkcnt",
        "pmio:write:2": "write_arg",
        "pmio:write:3": "write_cmd",
        "pmio:write:4": "write_dataport",
        "pmio:read:4": "read_dataport",
        "pmio:read:5": "read_status",
    }

    # -- register writes ----------------------------------------------------------

    def write_blksize(self, value):
        size = value & 0xFFF              # 12-bit field, as in real SDHCI
        if self.VULN_BLKSIZE:
            # CVE-2021-3409: accepted even mid-transfer.
            self.blksize = size
        else:
            if self.transfer_mode == self.T_NONE:
                self.blksize = size
            else:
                self.status = 0x40        # rejected: transfer active
        return 0

    def write_blkcnt(self, value):
        self.blkcnt = value
        return 0

    def write_arg(self, value):
        self.argreg = value
        return 0

    def read_status(self):
        return self.status

    # -- command engine -----------------------------------------------------------------

    def write_cmd(self, value):
        self.cmdreg = value
        cmd = value & 0x3F
        sed_command_decision(cmd)  # noqa: F821
        if cmd == self.CMD_GO_IDLE:
            self.soft_reset()
        elif cmd == self.CMD_SEND_STATUS:
            self.status = self.transfer_mode
        elif cmd == self.CMD_READ_SINGLE:
            self.start_read(1)
        elif cmd == self.CMD_READ_MULTI:
            self.start_read(self.blkcnt)
        elif cmd == self.CMD_WRITE_SINGLE:
            self.start_write(1)
        elif cmd == self.CMD_WRITE_MULTI:
            self.start_write(self.blkcnt)
        elif cmd == self.CMD_CID:
            self.stage_register_read(0xCD)
        elif cmd == self.CMD_CSD:
            self.stage_register_read(0xC5)
        elif cmd == self.CMD_STOP:
            self.finish_transfer()
        elif cmd == self.CMD_APP:
            self.status = 0x20
        elif cmd == self.CMD_SWITCH:
            self.status = 0x21
        else:
            self.status = 0xFF
        sed_command_end()  # noqa: F821
        return 0

    def soft_reset(self):
        self.transfer_mode = self.T_NONE
        self.data_count = 0
        self.trans_remain = 0
        self.blocks_done = 0
        self.status = 0
        self.prnsts = 0

    def start_read(self, count):
        self.cur_lba = self.argreg
        self.blkcnt = count
        self.blocks_done = 0
        self.transfer_mode = self.T_READ
        self.data_count = 0
        self.prnsts = self.prnsts | 0x0800     # buffer read enable
        self.fill_fifo()
        return 0

    def start_write(self, count):
        self.cur_lba = self.argreg
        self.blkcnt = count
        self.blocks_done = 0
        self.transfer_mode = self.T_WRITE
        self.data_count = 0
        self.prnsts = self.prnsts | 0x0400     # buffer write enable
        return 0

    def stage_register_read(self, tag):
        """CID/CSD register read: one block whose first bytes carry the
        16-byte register image (tagged so tests can tell them apart)."""
        self.transfer_mode = self.T_READ
        self.blkcnt = 1
        self.blocks_done = 0
        self.data_count = 0
        self.fifo_buffer[0] = tag
        for i in range(1, 16):
            self.fifo_buffer[i] = tag ^ i
        for i in range(16, 512):
            self.fifo_buffer[i] = 0
        self.prnsts = self.prnsts | 0x0800
        return 0

    def fill_fifo(self):
        """Stage one block from media into fifo_buffer."""
        base = self.cur_lba * 512
        count = self.blksize
        for i in range(count):
            byte = disk_read(base + i)  # noqa: F821
            self.fifo_buffer[i] = byte
        return 0

    # -- data port ----------------------------------------------------------------------

    def write_dataport(self, value):
        if self.transfer_mode != self.T_WRITE:
            self.status = 0x41
            return 0
        self.fifo_buffer[self.data_count] = value
        self.data_count += 1
        # Bytes remaining in this block: underflows when blksize shrank
        # under an in-flight transfer (the CVE's detonation point).
        self.trans_remain = self.blksize - self.data_count
        if self.trans_remain == 0:
            self.flush_block()
        return 0

    def read_dataport(self):
        if self.transfer_mode != self.T_READ:
            self.status = 0x42
            return 0
        value = self.fifo_buffer[self.data_count]
        self.data_count += 1
        self.trans_remain = self.blksize - self.data_count
        if self.trans_remain == 0:
            self.next_read_block()
        return value

    def flush_block(self):
        base = self.cur_lba * 512
        count = self.blksize
        for i in range(count):
            disk_write(base + i, self.fifo_buffer[i])  # noqa: F821
        self.blocks_done += 1
        self.cur_lba += 1
        self.data_count = 0
        if self.blocks_done >= self.blkcnt:
            self.finish_transfer()
        return 0

    def next_read_block(self):
        self.blocks_done += 1
        self.cur_lba += 1
        self.data_count = 0
        if self.blocks_done >= self.blkcnt:
            self.finish_transfer()
        else:
            self.fill_fifo()
        return 0

    def finish_transfer(self):
        self.transfer_mode = self.T_NONE
        self.prnsts = self.prnsts & 0xFFFFF3FF
        self.status = 0
        self.irq(1)
        return 0

    def on_irq(self, level):
        self.irq_level = level
        set_irq(level)  # noqa: F821
        return 0


@register_device
class SDHCI(Device):
    """The wrapped SD host controller."""

    LOGIC = SDHCILogic
    NAME = "sdhci"
    CVES = (
        CveGate("CVE-2021-3409", "VULN_BLKSIZE", "6.0.0",
                "blksize mutable mid-transfer; blksize - data_count "
                "underflows"),
    )

    def __init__(self, qemu_version: str = "99.0.0",
                 disk: DiskImage = None, irq_line: IRQLine = None,
                 **kwargs):
        self.disk = disk if disk is not None else DiskImage(16 << 20)
        self.irq_line = (irq_line if irq_line is not None
                         else IRQLine("sdhci"))
        super().__init__(qemu_version=qemu_version, **kwargs)

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "disk_read", lambda m, off: self.disk.read_byte(off), cost=30)
        self.machine.bind_extern(
            "disk_write", lambda m, off, v: self.disk.write_byte(off, v),
            cost=30)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def reset(self) -> None:
        self.machine.set_funcptr("irq", "on_irq")
        self.state.write_field("blksize", 512)
        self.state.write_field("blkcnt", 1)
