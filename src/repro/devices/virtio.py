"""Virtio — ring-descriptor NIC/blk pair (QEMU ``hw/virtio/*`` shape).

Programming model kept from the real transport: a status register for the
feature handshake, a queue-select register, per-queue base/size registers,
a queue-notify doorbell, and an interrupt-status register that clears on
read.  Queues live in guest memory as *descriptor tables* — each
descriptor ``[addr_lo, addr_mid, len_lo, len_hi, flags, next]`` — with an
avail ring (guest → device) and a used ring (device → guest) behind the
table.  ``NEXT``-flagged descriptors chain through their ``next`` index;
``INDIRECT``-flagged descriptors point at a *sub-table* of descriptors,
the virtio feature that stresses the indirect-jump and watchdog checks
differently than the five linear-ring models: control flow follows a
guest-controlled graph, not a bounded array scan.

Seeded synthetic vulnerability families (the grown corpus beyond the
paper's nine hand-picked CVEs; one family per const, versions chosen so
each family can be exercised in isolation):

* **SGLEN** (oob-write, fixed 7.1.0) — scatter-gather accumulates chain
  payloads into ``buffer`` at ``gather_pos`` with no total-length check;
  ``gather_pos`` is device state, so the parameter check fires
  (CVE-2015-7512 mechanics).
* **TRAILER** (reentrancy/pointer-hijack, fixed 7.2.0) — the device
  appends a 4-byte trailer after the gathered frame using a *temporary*
  cursor local; a 4093..4096-byte gather writes past ``buffer`` into the
  adjacent ``complete`` function pointer.  The parameter check is blind;
  the indirect-jump check catches the corrupted pointer at the completion
  callback (CVE-2015-7504 mechanics).
* **QLOOP** (descriptor-loop, fixed 7.3.0) — the chain walk trusts the
  guest's ``next`` links unconditionally; a cycle in the chain spins until
  the watchdog fires (CVE-2016-7909 mechanics).
* **BADQ** (state-confusion, fixed 7.4.0) — the notify doorbell does not
  validate the queue index; an out-of-range index dispatches the transmit
  path against ghost queue state at base 0, driven by whatever the guest
  staged there.  The patched build reports a config error instead.
"""

from __future__ import annotations

from repro.compiler import DeviceLogic, arr, fld, ptr, reg
from repro.devices.backends import DiskImage, GuestMemory, IRQLine, NetBackend
from repro.devices.base import CveGate, Device, register_device

BUFFER_SIZE = 4096
DESC_SIZE = 6
QUEUE_SIZE = 4          # reset-time queue depth both models program

# Descriptor flag bits.
F_NEXT = 1
F_WRITE = 2
F_INDIRECT = 4

# ISR bits.
ISR_QUEUE = 1
ISR_CONFIG = 2
ISR_ERROR = 0x80

# Status handshake bits (subset of the real transport's).
STATUS_ACK = 1
STATUS_DRIVER = 2
STATUS_DRIVER_OK = 4

BLK_CAPACITY = 2048     # sectors exposed through the config space

# virtio-blk request types.
BLK_T_IN = 0            # device → guest (read)
BLK_T_OUT = 1           # guest → device (write)


def queue_avail(base: int, size: int) -> int:
    """Guest address of a queue's avail ring (2-byte idx + 1-byte heads)."""
    return base + DESC_SIZE * size


def queue_used(base: int, size: int) -> int:
    """Guest address of a queue's used ring (1-byte idx + 2-byte entries)."""
    return base + DESC_SIZE * size + 2 + size


class VirtioNetLogic(DeviceLogic):
    """Compilable virtio-net logic: rx/tx/ctrl queues over one ring engine."""

    STRUCT = "VirtioNetState"
    FIELDS = (
        reg("status", "u8", doc="device status (feature handshake)"),
        reg("qsel", "u8", doc="queue select"),
        reg("isr", "u8", doc="interrupt status, clears on read"),
        fld("q0_base", "u32", doc="rx queue: descriptor table base"),
        fld("q0_size", "u16", doc="rx queue depth"),
        fld("q0_avail", "u16", doc="rx avail-ring cursor"),
        fld("q1_base", "u32", doc="tx queue: descriptor table base"),
        fld("q1_size", "u16", doc="tx queue depth"),
        fld("q1_avail", "u16", doc="tx avail-ring cursor"),
        fld("gather_pos", "i32", doc="frame assembly cursor (SGLEN)"),
        fld("recv_pos", "i32", doc="receive drain cursor"),
        fld("rx_len", "i32", doc="length of the frame in buffer"),
        fld("rx_ready", "u8", doc="a received frame awaits the guest"),
        arr("buffer", "u8", BUFFER_SIZE, doc="frame assembly buffer"),
        ptr("complete", doc="completion callback — sits right after buffer"),
        fld("irq_level", "u8"),
    )
    CONSTS = {
        "VULN_SGLEN": 0, "VULN_TRAILER": 0, "VULN_QLOOP": 0, "VULN_BADQ": 0,
        "BUFFER_SIZE": BUFFER_SIZE,
        "F_NEXT": F_NEXT, "F_WRITE": F_WRITE, "F_INDIRECT": F_INDIRECT,
        "ISR_QUEUE": ISR_QUEUE, "ISR_CONFIG": ISR_CONFIG,
        "ISR_ERROR": ISR_ERROR,
    }
    EXTERNS = ("dma_read", "dma_write", "net_tx_byte", "net_tx_done",
               "net_rx_byte", "set_irq")
    ENTRIES = {
        "pmio:write:0": "write_status",
        "pmio:read:0": "read_status",
        "pmio:write:1": "write_qsel",
        "pmio:read:1": "read_qsel",
        "pmio:write:2": "write_qbase",
        "pmio:write:3": "write_qsize",
        "pmio:write:4": "queue_notify",
        "pmio:read:5": "read_isr",
        "pmio:write:6": "rx_notify",
        "pmio:read:7": "read_rx_byte",
    }

    # -- transport registers ---------------------------------------------------

    def write_status(self, value):
        self.status = value
        return 0

    def read_status(self):
        return self.status

    def write_qsel(self, value):
        self.qsel = value
        return 0

    def read_qsel(self):
        return self.qsel

    def write_qbase(self, value):
        # Programming a queue's base resets its ring state (virtio
        # transport semantics: queue setup discards prior progress), so
        # a replayed driver bring-up re-arms the cursor the same way a
        # fresh guest would.
        if self.qsel == 0:
            self.q0_base = value
            self.q0_avail = 0
        elif self.qsel == 1:
            self.q1_base = value
            self.q1_avail = 0
        return 0

    def write_qsize(self, value):
        if self.qsel == 0:
            self.q0_size = value
        elif self.qsel == 1:
            self.q1_size = value
        return 0

    def read_isr(self):
        value = self.isr
        self.isr = 0
        if self.irq_level == 1:
            self.complete(0)
        return value

    # -- notify dispatch -------------------------------------------------------

    def queue_notify(self, q):
        sed_command_decision(q)  # noqa: F821
        if q == 0:
            self.sync_rx_avail()
        elif q == 1:
            base = self.q1_base
            size = self.q1_size
            self.process_tx(base, size)
        elif q == 2:
            self.ack_ctrl()
        else:
            if self.VULN_BADQ:
                # Vulnerable build: an unvalidated queue index falls
                # through to the transmit path against the ghost queue at
                # base 0, with whatever the guest staged there.
                self.process_tx(0, 4)
            else:
                self.isr = self.isr | self.ISR_ERROR
        sed_command_end()  # noqa: F821
        return 0

    def sync_rx_avail(self):
        avail = self.q0_base + 6 * self.q0_size
        lo = dma_read(avail)  # noqa: F821
        hi = dma_read(avail + 1)  # noqa: F821
        self.q0_avail = lo | (hi << 8)
        return 0

    def ack_ctrl(self):
        self.isr = self.isr | self.ISR_CONFIG
        self.notify_complete()
        return 0

    # -- transmit path ---------------------------------------------------------

    def process_tx(self, base, size):
        """Drain the avail ring: one descriptor chain per posted head."""
        avail = base + 6 * size
        lo = dma_read(avail)  # noqa: F821
        hi = dma_read(avail + 1)  # noqa: F821
        aidx = lo | (hi << 8)
        cursor = self.q1_avail
        while cursor != aidx:
            head = dma_read(avail + 2 + cursor)  # noqa: F821
            self.handle_tx_chain(base, size, head)
            cursor += 1
            if cursor >= size:
                cursor = 0
        self.q1_avail = cursor
        return 0

    def handle_tx_chain(self, base, size, head):
        """Gather one descriptor chain into the frame buffer and send it.

        The vulnerable build (QLOOP) trusts the guest's next links
        unconditionally; the patched build bounds the walk by the queue
        depth and drops over-long (cyclic) chains.
        """
        self.gather_pos = 0
        desc = head
        more = 1
        hops = 0
        while more == 1:
            d = base + 6 * desc
            a_lo = dma_read(d)  # noqa: F821
            a_mid = dma_read(d + 1)  # noqa: F821
            l_lo = dma_read(d + 2)  # noqa: F821
            l_hi = dma_read(d + 3)  # noqa: F821
            flags = dma_read(d + 4)  # noqa: F821
            nxt = dma_read(d + 5)  # noqa: F821
            addr = a_lo | (a_mid << 8)
            dlen = l_lo | (l_hi << 8)
            if flags & self.F_INDIRECT:
                self.gather_indirect(addr, dlen)
            else:
                self.gather_bytes(addr, dlen)
            if flags & self.F_NEXT:
                desc = nxt
                if self.VULN_QLOOP:
                    more = 1
                else:
                    hops += 1
                    if hops > size:
                        self.isr = self.isr | self.ISR_ERROR
                        more = 0
            else:
                more = 0
        self.seal_and_send()
        used = base + 6 * size + 2 + size
        uidx = dma_read(used)  # noqa: F821
        slot = uidx % size
        dma_write(used + 1 + 2 * slot, head)  # noqa: F821
        dma_write(used + 2 + 2 * slot, self.gather_pos & 0xFF)  # noqa: F821
        dma_write(used, (uidx + 1) & 0xFF)  # noqa: F821
        self.notify_complete()
        return 0

    def gather_indirect(self, table, tbytes):
        """INDIRECT descriptor: *table* holds tbytes/6 packed descriptors.
        One level only, like the real transport — sub-descriptors gather,
        they never chain further."""
        off = 0
        while off + 6 <= tbytes:
            a_lo = dma_read(table + off)  # noqa: F821
            a_mid = dma_read(table + off + 1)  # noqa: F821
            l_lo = dma_read(table + off + 2)  # noqa: F821
            l_hi = dma_read(table + off + 3)  # noqa: F821
            addr = a_lo | (a_mid << 8)
            dlen = l_lo | (l_hi << 8)
            self.gather_bytes(addr, dlen)
            off += 6
        return 0

    def gather_bytes(self, addr, dlen):
        if self.VULN_SGLEN:
            for i in range(dlen):
                byte = dma_read(addr + i)  # noqa: F821
                self.buffer[self.gather_pos] = byte
                self.gather_pos += 1
        else:
            # The fix: bound the accumulated frame length.
            if self.gather_pos + dlen <= self.BUFFER_SIZE:
                for i in range(dlen):
                    byte = dma_read(addr + i)  # noqa: F821
                    self.buffer[self.gather_pos] = byte
                    self.gather_pos += 1
            else:
                self.isr = self.isr | self.ISR_ERROR
        return 0

    def seal_and_send(self):
        """Append the 4-byte trailer ("VIO\\n") and hand the frame to the
        net backend.  The vulnerable build writes the trailer through a
        temporary cursor with no bound check — past the buffer it lands in
        the ``complete`` pointer."""
        size = self.gather_pos
        if self.VULN_TRAILER:
            pos = size
            self.buffer[pos] = 0x56
            self.buffer[pos + 1] = 0x49
            self.buffer[pos + 2] = 0x4F
            self.buffer[pos + 3] = 0x0A
            size = size + 4
        else:
            if size + 4 <= self.BUFFER_SIZE:
                pos = size
                self.buffer[pos] = 0x56
                self.buffer[pos + 1] = 0x49
                self.buffer[pos + 2] = 0x4F
                self.buffer[pos + 3] = 0x0A
                size = size + 4
            else:
                self.isr = self.isr | self.ISR_ERROR
        for i in range(size):
            net_tx_byte(self.buffer[i])  # noqa: F821
        net_tx_done(size)  # noqa: F821
        return 0

    # -- receive path ----------------------------------------------------------

    def rx_notify(self, length):
        """Host injected a frame of *length* bytes; pull it in.  Requires
        the guest to have posted rx buffers (avail cursor synced)."""
        if length > self.BUFFER_SIZE:
            self.isr = self.isr | self.ISR_ERROR
            return 0
        if self.q0_avail == 0:
            self.isr = self.isr | self.ISR_ERROR
            return 0
        self.recv_pos = 0
        for i in range(length):
            byte = net_rx_byte(i)  # noqa: F821
            self.buffer[self.recv_pos] = byte
            self.recv_pos += 1
        self.rx_len = length
        self.rx_ready = 1
        self.recv_pos = 0
        used = self.q0_base + 6 * self.q0_size + 2 + self.q0_size
        uidx = dma_read(used)  # noqa: F821
        dma_write(used, (uidx + 1) & 0xFF)  # noqa: F821
        self.notify_complete()
        return 0

    def read_rx_byte(self):
        """Guest drains the received frame one byte at a time."""
        if self.rx_ready == 0:
            return 0
        if self.recv_pos >= self.rx_len:
            self.rx_ready = 0
            return 0
        value = self.buffer[self.recv_pos]
        self.recv_pos += 1
        if self.recv_pos >= self.rx_len:
            self.rx_ready = 0
        return value

    # -- interrupts ------------------------------------------------------------

    def notify_complete(self):
        self.isr = self.isr | self.ISR_QUEUE
        self.complete(1)
        return 0

    def on_complete(self, level):
        self.irq_level = level
        set_irq(level)  # noqa: F821
        return 0


class VirtioBlkLogic(DeviceLogic):
    """Compilable virtio-blk logic: request queue over the same ring engine.

    A request chain is ``header desc → data descs → status desc``: the
    8-byte header carries ``[type, pad, sector_lo, sector_mid, ...]``;
    ``WRITE``-flagged descriptors are device-written (read payloads and the
    1-byte status), unflagged descriptors carry write payloads gathered
    into ``buffer`` and flushed to disk with a 4-byte journal footer.
    """

    STRUCT = "VirtioBlkState"
    FIELDS = (
        reg("status", "u8", doc="device status (feature handshake)"),
        reg("qsel", "u8", doc="queue select"),
        reg("isr", "u8", doc="interrupt status, clears on read"),
        fld("q0_base", "u32", doc="request queue: descriptor table base"),
        fld("q0_size", "u16", doc="request queue depth"),
        fld("q0_avail", "u16", doc="request avail-ring cursor"),
        fld("q1_base", "u32", doc="event queue: descriptor table base"),
        fld("q1_size", "u16", doc="event queue depth"),
        fld("q1_avail", "u16", doc="event avail-ring cursor"),
        fld("gather_pos", "i32", doc="write assembly cursor (SGLEN)"),
        fld("read_off", "i32", doc="read-transfer cursor across data descs"),
        fld("req_type", "u8", doc="current request type (0=read 1=write)"),
        fld("req_sector", "u32", doc="current request start sector"),
        arr("buffer", "u8", BUFFER_SIZE, doc="write assembly buffer"),
        ptr("complete", doc="completion callback — sits right after buffer"),
        fld("irq_level", "u8"),
    )
    CONSTS = {
        "VULN_SGLEN": 0, "VULN_TRAILER": 0, "VULN_QLOOP": 0, "VULN_BADQ": 0,
        "BUFFER_SIZE": BUFFER_SIZE,
        "F_NEXT": F_NEXT, "F_WRITE": F_WRITE, "F_INDIRECT": F_INDIRECT,
        "ISR_QUEUE": ISR_QUEUE, "ISR_CONFIG": ISR_CONFIG,
        "ISR_ERROR": ISR_ERROR,
        "CAPACITY": BLK_CAPACITY,
    }
    EXTERNS = ("dma_read", "dma_write", "disk_read", "disk_write", "set_irq")
    ENTRIES = {
        "pmio:write:0": "write_status",
        "pmio:read:0": "read_status",
        "pmio:write:1": "write_qsel",
        "pmio:read:1": "read_qsel",
        "pmio:write:2": "write_qbase",
        "pmio:write:3": "write_qsize",
        "pmio:write:4": "queue_notify",
        "pmio:read:5": "read_isr",
        "pmio:read:6": "read_capacity",
    }

    # -- transport registers ---------------------------------------------------

    def write_status(self, value):
        self.status = value
        return 0

    def read_status(self):
        return self.status

    def write_qsel(self, value):
        self.qsel = value
        return 0

    def read_qsel(self):
        return self.qsel

    def write_qbase(self, value):
        # Programming a queue's base resets its ring state (virtio
        # transport semantics: queue setup discards prior progress), so
        # a replayed driver bring-up re-arms the cursor the same way a
        # fresh guest would.
        if self.qsel == 0:
            self.q0_base = value
            self.q0_avail = 0
        elif self.qsel == 1:
            self.q1_base = value
            self.q1_avail = 0
        return 0

    def write_qsize(self, value):
        if self.qsel == 0:
            self.q0_size = value
        elif self.qsel == 1:
            self.q1_size = value
        return 0

    def read_isr(self):
        value = self.isr
        self.isr = 0
        if self.irq_level == 1:
            self.complete(0)
        return value

    def read_capacity(self):
        """Config space: capacity in sectors, byte-selected by qsel."""
        return (self.CAPACITY >> (8 * self.qsel)) & 0xFF

    # -- notify dispatch -------------------------------------------------------

    def queue_notify(self, q):
        sed_command_decision(q)  # noqa: F821
        if q == 0:
            base = self.q0_base
            size = self.q0_size
            self.process_requests(base, size)
        elif q == 1:
            self.sync_event_avail()
        elif q == 2:
            self.ack_ctrl()
        else:
            if self.VULN_BADQ:
                # Vulnerable build: an unvalidated queue index falls
                # through to the request path against the ghost queue at
                # base 0, with whatever the guest staged there.
                self.process_requests(0, 4)
            else:
                self.isr = self.isr | self.ISR_ERROR
        sed_command_end()  # noqa: F821
        return 0

    def sync_event_avail(self):
        avail = self.q1_base + 6 * self.q1_size
        lo = dma_read(avail)  # noqa: F821
        hi = dma_read(avail + 1)  # noqa: F821
        self.q1_avail = lo | (hi << 8)
        return 0

    def ack_ctrl(self):
        self.isr = self.isr | self.ISR_CONFIG
        self.notify_complete()
        return 0

    # -- request path ----------------------------------------------------------

    def process_requests(self, base, size):
        """Drain the avail ring: one request chain per posted head."""
        avail = base + 6 * size
        lo = dma_read(avail)  # noqa: F821
        hi = dma_read(avail + 1)  # noqa: F821
        aidx = lo | (hi << 8)
        cursor = self.q0_avail
        while cursor != aidx:
            head = dma_read(avail + 2 + cursor)  # noqa: F821
            self.handle_req_chain(base, size, head)
            cursor += 1
            if cursor >= size:
                cursor = 0
        self.q0_avail = cursor
        return 0

    def handle_req_chain(self, base, size, head):
        """Walk one request chain: header, data descriptors, status byte.

        The vulnerable build (QLOOP) trusts the guest's next links
        unconditionally; the patched build bounds the walk by the queue
        depth and drops over-long (cyclic) chains.
        """
        self.gather_pos = 0
        self.read_off = 0
        desc = head
        more = 1
        hops = 0
        seen = 0
        while more == 1:
            d = base + 6 * desc
            a_lo = dma_read(d)  # noqa: F821
            a_mid = dma_read(d + 1)  # noqa: F821
            l_lo = dma_read(d + 2)  # noqa: F821
            l_hi = dma_read(d + 3)  # noqa: F821
            flags = dma_read(d + 4)  # noqa: F821
            nxt = dma_read(d + 5)  # noqa: F821
            addr = a_lo | (a_mid << 8)
            dlen = l_lo | (l_hi << 8)
            if seen == 0:
                self.parse_header(addr)
            elif flags & self.F_WRITE:
                if dlen == 1:
                    dma_write(addr, 0)  # noqa: F821  (status: OK)
                else:
                    self.fill_from_disk(addr, dlen)
            elif flags & self.F_INDIRECT:
                self.gather_indirect(addr, dlen)
            else:
                self.gather_bytes(addr, dlen)
            seen += 1
            if flags & self.F_NEXT:
                desc = nxt
                if self.VULN_QLOOP:
                    more = 1
                else:
                    hops += 1
                    if hops > size:
                        self.isr = self.isr | self.ISR_ERROR
                        more = 0
            else:
                more = 0
        if self.req_type == 1:
            self.flush_to_disk()
        used = base + 6 * size + 2 + size
        uidx = dma_read(used)  # noqa: F821
        slot = uidx % size
        dma_write(used + 1 + 2 * slot, head)  # noqa: F821
        dma_write(used + 2 + 2 * slot, self.gather_pos & 0xFF)  # noqa: F821
        dma_write(used, (uidx + 1) & 0xFF)  # noqa: F821
        self.notify_complete()
        return 0

    def parse_header(self, addr):
        kind = dma_read(addr)  # noqa: F821
        s_lo = dma_read(addr + 2)  # noqa: F821
        s_mid = dma_read(addr + 3)  # noqa: F821
        self.req_type = kind
        self.req_sector = s_lo | (s_mid << 8)
        return 0

    def gather_indirect(self, table, tbytes):
        """INDIRECT descriptor: *table* holds tbytes/6 packed descriptors.
        One level only — sub-descriptors gather, they never chain."""
        off = 0
        while off + 6 <= tbytes:
            a_lo = dma_read(table + off)  # noqa: F821
            a_mid = dma_read(table + off + 1)  # noqa: F821
            l_lo = dma_read(table + off + 2)  # noqa: F821
            l_hi = dma_read(table + off + 3)  # noqa: F821
            addr = a_lo | (a_mid << 8)
            dlen = l_lo | (l_hi << 8)
            self.gather_bytes(addr, dlen)
            off += 6
        return 0

    def gather_bytes(self, addr, dlen):
        if self.VULN_SGLEN:
            for i in range(dlen):
                byte = dma_read(addr + i)  # noqa: F821
                self.buffer[self.gather_pos] = byte
                self.gather_pos += 1
        else:
            # The fix: bound the accumulated request length.
            if self.gather_pos + dlen <= self.BUFFER_SIZE:
                for i in range(dlen):
                    byte = dma_read(addr + i)  # noqa: F821
                    self.buffer[self.gather_pos] = byte
                    self.gather_pos += 1
            else:
                self.isr = self.isr | self.ISR_ERROR
        return 0

    def fill_from_disk(self, addr, dlen):
        """Read request: stream sectors from the disk into guest memory."""
        base = self.req_sector * 512 + self.read_off
        for i in range(dlen):
            byte = disk_read(base + i)  # noqa: F821
            dma_write(addr + i, byte)  # noqa: F821
        self.read_off += dlen
        return 0

    def flush_to_disk(self):
        """Write request: append the 4-byte journal footer ("J!.\\n") and
        flush the assembled payload.  The vulnerable build writes the
        footer through a temporary cursor with no bound check — past the
        buffer it lands in the ``complete`` pointer."""
        n = self.gather_pos
        if self.VULN_TRAILER:
            pos = n
            self.buffer[pos] = 0x4A
            self.buffer[pos + 1] = 0x21
            self.buffer[pos + 2] = 0x00
            self.buffer[pos + 3] = 0x0A
            n = n + 4
        else:
            if n + 4 <= self.BUFFER_SIZE:
                pos = n
                self.buffer[pos] = 0x4A
                self.buffer[pos + 1] = 0x21
                self.buffer[pos + 2] = 0x00
                self.buffer[pos + 3] = 0x0A
                n = n + 4
            else:
                self.isr = self.isr | self.ISR_ERROR
        base = self.req_sector * 512
        for i in range(n):
            disk_write(base + i, self.buffer[i])  # noqa: F821
        return 0

    # -- interrupts ------------------------------------------------------------

    def notify_complete(self):
        self.isr = self.isr | self.ISR_QUEUE
        self.complete(1)
        return 0

    def on_complete(self, level):
        self.irq_level = level
        set_irq(level)  # noqa: F821
        return 0


#: The four synthetic families, shared by both models (distinct CVE-style
#: ids per device so corpus labels and registry specs stay per-device).
def _virtio_gates(prefix: str):
    return (
        CveGate(f"{prefix}-SGLEN", "VULN_SGLEN", "7.1.0",
                "scatter-gather accumulates chain payloads past buffer "
                "at gather_pos (oob-write family)"),
        CveGate(f"{prefix}-TRAILER", "VULN_TRAILER", "7.2.0",
                "trailer append via a temp cursor corrupts the adjacent "
                "completion pointer (reentrancy/pointer-hijack family)"),
        CveGate(f"{prefix}-QLOOP", "VULN_QLOOP", "7.3.0",
                "descriptor chain walk never terminates on a next-link "
                "cycle (descriptor-loop family)"),
        CveGate(f"{prefix}-BADQ", "VULN_BADQ", "7.4.0",
                "unvalidated notify queue index dispatches against ghost "
                "queue state at base 0 (state-confusion family)"),
    )


@register_device
class VirtioNet(Device):
    """The wrapped virtio NIC with its backends."""

    LOGIC = VirtioNetLogic
    NAME = "virtio-net"
    CVES = _virtio_gates("VIRTIO-NET")

    def __init__(self, qemu_version: str = "99.0.0",
                 memory: GuestMemory = None, net: NetBackend = None,
                 irq_line: IRQLine = None, **kwargs):
        self.memory = memory if memory is not None else GuestMemory()
        self.net = net if net is not None else NetBackend()
        self.irq_line = (irq_line if irq_line is not None
                         else IRQLine("virtio-net"))
        self._tx_staging: list = []
        self._rx_frame: bytes = b""
        kwargs.setdefault("max_steps", 60_000)
        super().__init__(qemu_version=qemu_version, **kwargs)

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "dma_read", lambda m, addr: self.memory.read_byte(addr), cost=40)
        self.machine.bind_extern(
            "dma_write", lambda m, addr, v: self.memory.write_byte(addr, v),
            cost=40)
        self.machine.bind_extern("net_tx_byte", self._net_tx_byte, cost=20)
        self.machine.bind_extern("net_tx_done", self._net_tx_done, cost=60)
        self.machine.bind_extern("net_rx_byte", self._net_rx_byte, cost=20)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def _net_tx_byte(self, machine, byte: int) -> None:
        self._tx_staging.append(byte & 0xFF)

    def _net_tx_done(self, machine, length: int) -> None:
        self.net.transmit(bytes(self._tx_staging[:length]))
        self._tx_staging.clear()

    def _net_rx_byte(self, machine, index: int) -> int:
        if 0 <= index < len(self._rx_frame):
            return self._rx_frame[index]
        return 0

    def reset(self) -> None:
        self.machine.set_funcptr("complete", "on_complete")
        self.state.write_field("q0_size", QUEUE_SIZE)
        self.state.write_field("q1_size", QUEUE_SIZE)

    # -- host-side helpers -----------------------------------------------------

    def stage_rx_frame(self, payload: bytes) -> None:
        """Make *payload* available to the next rx_notify round."""
        self._rx_frame = bytes(payload)


@register_device
class VirtioBlk(Device):
    """The wrapped virtio block device with its backing disk."""

    LOGIC = VirtioBlkLogic
    NAME = "virtio-blk"
    CVES = _virtio_gates("VIRTIO-BLK")

    def __init__(self, qemu_version: str = "99.0.0",
                 memory: GuestMemory = None, disk: DiskImage = None,
                 irq_line: IRQLine = None, **kwargs):
        self.memory = memory if memory is not None else GuestMemory()
        self.disk = (disk if disk is not None
                     else DiskImage(BLK_CAPACITY * 512))
        self.irq_line = (irq_line if irq_line is not None
                         else IRQLine("virtio-blk"))
        kwargs.setdefault("max_steps", 60_000)
        super().__init__(qemu_version=qemu_version, **kwargs)

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "dma_read", lambda m, addr: self.memory.read_byte(addr), cost=40)
        self.machine.bind_extern(
            "dma_write", lambda m, addr, v: self.memory.write_byte(addr, v),
            cost=40)
        self.machine.bind_extern(
            "disk_read", lambda m, off: self.disk.read_byte(off), cost=30)
        self.machine.bind_extern(
            "disk_write", lambda m, off, v: self.disk.write_byte(off, v),
            cost=30)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def reset(self) -> None:
        self.machine.set_funcptr("complete", "on_complete")
        self.state.write_field("q0_size", QUEUE_SIZE)
        self.state.write_field("q1_size", QUEUE_SIZE)
