"""SCSI — NCR53C9x-family (ESP) controller with an attached SCSI disk
(QEMU ``hw/scsi/esp.c`` + ``hw/scsi/scsi-bus.c`` analogue).

Programming model: a 16-byte command FIFO, an ESP command register
(SELECT / TRANSFER INFO / message-accepted / reset), transfer-count
registers for DMA selects, SCSI phases, and a CDB parser whose length
table is exactly where CVE-2015-5158 lived.

Seeded vulnerabilities (both detected by the conditional-jump check in
the paper — the overflow cursors are *temporaries*, outside the parameter
check's device-state scope):

* **CVE-2015-5158** (fixed 2.4.1; tested v2.4.0) — the CDB length for a
  vendor-group opcode comes back as a bogus huge value; the CDB copy loop
  (local cursor) overruns ``cdb``.
* **CVE-2016-4439** (fixed 2.6.1; tested v2.6.0) — a DMA SELECT copies
  ``ti_size`` bytes into the 16-byte ``cmdbuf`` without clamping; the
  copy cursor is a local.
"""

from __future__ import annotations

from repro.compiler import DeviceLogic, arr, fld, ptr, reg
from repro.devices.backends import DiskImage, GuestMemory, IRQLine
from repro.devices.base import CveGate, Device, register_device

CMDBUF_SIZE = 16
CDB_SIZE = 16
DATABUF_SIZE = 4096
BLOCK = 512

# ESP commands.
ESP_RESET = 0x02
ESP_TI = 0x10             # transfer info (move a data block)
ESP_ICCS = 0x11           # initiator command complete sequence
ESP_MSGACC = 0x12
ESP_SEL = 0x42            # select with ATN (FIFO command)
ESP_SELDMA = 0x43         # select with DMA command buffer
ESP_ENSEL = 0x44          # rare
ESP_DISSEL = 0x45         # rare

# SCSI phases.
PHASE_IDLE = 0
PHASE_DATAIN = 1
PHASE_DATAOUT = 2
PHASE_STATUS = 3

# SCSI opcodes.
OP_TEST_UNIT_READY = 0x00
OP_REQUEST_SENSE = 0x03
OP_READ_6 = 0x08
OP_WRITE_6 = 0x0A
OP_INQUIRY = 0x12
OP_MODE_SENSE = 0x1A
OP_READ_CAPACITY = 0x25
OP_READ_10 = 0x28
OP_WRITE_10 = 0x2A


class ESPLogic(DeviceLogic):
    """Compilable ESP + SCSI-disk logic."""

    STRUCT = "ESPState"
    FIELDS = (
        reg("status", "u8", doc="ESP status register"),
        reg("seqstep", "u8", doc="sequence step"),
        reg("tclo", "u8", doc="transfer count low"),
        reg("tcmid", "u8", doc="transfer count mid"),
        fld("ti_size", "i32", doc="DMA transfer count"),
        fld("fifo_pos", "u8", doc="FIFO fill level"),
        arr("fifo", "u8", CMDBUF_SIZE, doc="byte FIFO"),
        fld("cmdlen", "u32", doc="bytes in cmdbuf"),
        arr("cmdbuf", "u8", CMDBUF_SIZE, doc="CDB staging (CVE-2016-4439)"),
        arr("cdb", "u8", CDB_SIZE, doc="parsed CDB (CVE-2015-5158)"),
        fld("phase", "u8"),
        fld("cur_lba", "u32"),
        fld("xfer_len", "i32", doc="bytes left in the data phase"),
        fld("data_pos", "i32"),
        arr("databuf", "u8", DATABUF_SIZE, doc="data-phase staging"),
        ptr("irq", doc="interrupt callback"),
        fld("irq_level", "u8"),
        fld("scsi_status", "u8"),
        fld("dma_addr", "u32"),
    )
    CONSTS = {
        "VULN_5158": 0, "VULN_4439": 0,
        "ESP_RESET": ESP_RESET, "ESP_TI": ESP_TI, "ESP_ICCS": ESP_ICCS,
        "ESP_MSGACC": ESP_MSGACC, "ESP_SEL": ESP_SEL,
        "ESP_SELDMA": ESP_SELDMA, "ESP_ENSEL": ESP_ENSEL,
        "ESP_DISSEL": ESP_DISSEL,
        "P_IDLE": PHASE_IDLE, "P_DATAIN": PHASE_DATAIN,
        "P_DATAOUT": PHASE_DATAOUT, "P_STATUS": PHASE_STATUS,
        "OP_TUR": OP_TEST_UNIT_READY, "OP_INQUIRY": OP_INQUIRY,
        "OP_REQ_SENSE": OP_REQUEST_SENSE, "OP_READ_6": OP_READ_6,
        "OP_WRITE_6": OP_WRITE_6,
        "OP_MODE_SENSE": OP_MODE_SENSE, "OP_READ_CAP": OP_READ_CAPACITY,
        "OP_READ_10": OP_READ_10, "OP_WRITE_10": OP_WRITE_10,
        "CMDBUF_SIZE": CMDBUF_SIZE, "BLOCK": BLOCK,
        "DATABUF_SIZE": DATABUF_SIZE,
    }
    EXTERNS = ("disk_read", "disk_write", "dma_read", "set_irq")
    ENTRIES = {
        "pmio:write:0": "write_fifo_port",
        "pmio:read:0": "read_data_port",
        "pmio:write:1": "write_data_port",
        "pmio:write:3": "write_cmd",
        "pmio:read:3": "read_status",
        "pmio:write:5": "write_tclo",
        "pmio:write:6": "write_tcmid",
        "pmio:write:7": "write_dma_addr",
    }

    # -- registers ---------------------------------------------------------------

    def write_tclo(self, value):
        self.tclo = value
        self.ti_size = (self.ti_size & 0xFF00) | value
        return 0

    def write_tcmid(self, value):
        self.tcmid = value
        self.ti_size = (self.ti_size & 0x00FF) | (value << 8)
        return 0

    def write_dma_addr(self, value):
        self.dma_addr = value
        return 0

    def read_status(self):
        return self.status

    # -- FIFO & data ports ------------------------------------------------------------

    def write_fifo_port(self, value):
        if self.fifo_pos < self.CMDBUF_SIZE:
            self.fifo[self.fifo_pos] = value
            self.fifo_pos += 1
        else:
            self.status = self.status | 0x40   # gross error
        return 0

    def write_data_port(self, value):
        """Data-out phase: payload byte toward the disk."""
        if self.phase == self.P_DATAOUT:
            self.databuf[self.data_pos] = value
            self.data_pos += 1
            if self.data_pos >= self.BLOCK:
                self.flush_data_block()
        return 0

    def read_data_port(self):
        """Data-in phase: the guest drains staged disk data."""
        if self.phase != self.P_DATAIN:
            return 0
        value = self.databuf[self.data_pos]
        self.data_pos += 1
        if self.data_pos >= self.BLOCK:
            self.next_data_block()
        return value

    # -- ESP command register -----------------------------------------------------------

    def write_cmd(self, value):
        cmd = value & 0x7F
        if cmd == self.ESP_RESET:
            self.do_reset()
        elif cmd == self.ESP_SEL:
            self.do_select_fifo()
        elif cmd == self.ESP_SELDMA:
            self.do_select_dma()
        elif cmd == self.ESP_TI:
            self.do_transfer_info()
        elif cmd == self.ESP_ICCS:
            self.phase = self.P_STATUS
            self.raise_irq()
        elif cmd == self.ESP_MSGACC:
            self.phase = self.P_IDLE
            self.status = 0
        elif cmd == self.ESP_ENSEL:
            self.seqstep = 0
        elif cmd == self.ESP_DISSEL:
            self.seqstep = 0
            self.raise_irq()
        else:
            self.status = self.status | 0x40
        return 0

    def do_reset(self):
        self.fifo_pos = 0
        self.cmdlen = 0
        self.phase = self.P_IDLE
        self.data_pos = 0
        self.xfer_len = 0
        self.status = 0
        self.scsi_status = 0
        return 0

    # -- selection: command buffer assembly ------------------------------------------------

    def do_select_fifo(self):
        """SELECT with the CDB already in the FIFO (the benign path)."""
        count = self.fifo_pos
        pos = 0
        for i in range(count):
            self.cmdbuf[pos] = self.fifo[i]
            pos += 1
        self.cmdlen = count
        self.fifo_pos = 0
        self.execute_scsi()
        return 0

    def do_select_dma(self):
        """SELECT with the CDB DMAed from guest memory.

        CVE-2016-4439: ``ti_size`` is not clamped to the 16-byte cmdbuf;
        the copy cursor is a local, so the overflow is invisible to the
        parameter check — the conditional-jump check flags the untrained
        path instead.
        """
        count = self.ti_size
        if self.VULN_4439:
            pos = 0
            for i in range(count):
                byte = dma_read(self.dma_addr + i)  # noqa: F821
                self.cmdbuf[pos] = byte
                pos += 1
            self.cmdlen = count
        else:
            if count > self.CMDBUF_SIZE:
                count = self.CMDBUF_SIZE          # the upstream clamp
            pos = 0
            for i in range(count):
                byte = dma_read(self.dma_addr + i)  # noqa: F821
                self.cmdbuf[pos] = byte
                pos += 1
            self.cmdlen = count
        self.execute_scsi()
        return 0

    # -- SCSI layer ------------------------------------------------------------------------

    def execute_scsi(self):
        """Parse the CDB (CVE-2015-5158 lives in the length table) and
        dispatch the SCSI opcode."""
        first = self.cmdbuf[0]
        group = first >> 5
        if group == 0:
            clen = 6
        elif group == 1:
            clen = 10
        elif group == 2:
            clen = 10
        elif group == 5:
            clen = 12
        else:
            if self.VULN_5158:
                # scsi_cdb_length() returned -1; the caller used it as a
                # size_t — model the effect with a huge copy length.
                clen = 255
            else:
                self.scsi_status = 2              # CHECK CONDITION
                self.phase = self.P_STATUS
                self.raise_irq()
                return 0
        pos = 0
        for i in range(clen):
            self.cdb[pos] = self.cmdbuf[i]
            pos += 1
        self.dispatch_opcode()
        return 0

    def dispatch_opcode(self):
        op = self.cdb[0]
        sed_command_decision(op)  # noqa: F821
        if op == self.OP_TUR:
            self.scsi_status = 0
            self.phase = self.P_STATUS
        elif op == self.OP_REQ_SENSE:
            self.stage_sense()
        elif op == self.OP_READ_6:
            self.begin_rw6(0)
        elif op == self.OP_WRITE_6:
            self.begin_rw6(1)
        elif op == self.OP_INQUIRY:
            self.stage_inquiry()
        elif op == self.OP_READ_CAP:
            self.stage_capacity()
        elif op == self.OP_READ_10:
            self.begin_read10()
        elif op == self.OP_WRITE_10:
            self.begin_write10()
        elif op == self.OP_MODE_SENSE:
            self.stage_mode_sense()
        else:
            self.scsi_status = 2
            self.phase = self.P_STATUS
        sed_command_end()  # noqa: F821
        self.raise_irq()
        return 0

    def stage_inquiry(self):
        self.databuf[0] = 0          # direct-access device
        self.databuf[1] = 0
        self.databuf[2] = 5          # SPC-3
        self.databuf[3] = 2
        self.databuf[4] = 31
        self.xfer_len = 36
        self.data_pos = 0
        self.phase = self.P_DATAIN

    def stage_capacity(self):
        self.databuf[0] = 0
        self.databuf[1] = 0
        self.databuf[2] = 0x7F
        self.databuf[3] = 0xFF
        self.databuf[4] = 0
        self.databuf[5] = 0
        self.databuf[6] = 2
        self.databuf[7] = 0
        self.xfer_len = 8
        self.data_pos = 0
        self.phase = self.P_DATAIN

    def stage_mode_sense(self):
        self.databuf[0] = 3
        self.databuf[1] = 0
        self.databuf[2] = 0
        self.databuf[3] = 0
        self.xfer_len = 4
        self.data_pos = 0
        self.phase = self.P_DATAIN

    def stage_sense(self):
        """REQUEST SENSE: report and clear the last check condition."""
        self.databuf[0] = 0x70                 # fixed format
        self.databuf[1] = 0
        self.databuf[2] = self.scsi_status     # sense key analogue
        self.databuf[3] = 0
        self.xfer_len = 8
        self.data_pos = 0
        self.scsi_status = 0
        self.phase = self.P_DATAIN

    def begin_rw6(self, direction):
        """READ(6)/WRITE(6): 21-bit LBA + 8-bit block count."""
        self.cur_lba = ((self.cdb[1] & 0x1F) << 16) \
            | (self.cdb[2] << 8) | self.cdb[3]
        blocks = self.cdb[4]
        if blocks == 0:
            blocks = 256
        self.xfer_len = blocks * self.BLOCK
        self.data_pos = 0
        if direction == 0:
            self.phase = self.P_DATAIN
            self.stage_block()
        else:
            self.phase = self.P_DATAOUT
        return 0

    def cdb_lba(self):
        return ((self.cdb[2] << 24) | (self.cdb[3] << 16)
                | (self.cdb[4] << 8) | self.cdb[5])

    def cdb_blocks(self):
        return (self.cdb[7] << 8) | self.cdb[8]

    def begin_read10(self):
        self.cur_lba = self.cdb_lba()
        blocks = self.cdb_blocks()
        self.xfer_len = blocks * self.BLOCK
        self.data_pos = 0
        self.phase = self.P_DATAIN
        self.stage_block()
        return 0

    def begin_write10(self):
        self.cur_lba = self.cdb_lba()
        blocks = self.cdb_blocks()
        self.xfer_len = blocks * self.BLOCK
        self.data_pos = 0
        self.phase = self.P_DATAOUT
        return 0

    def stage_block(self):
        base = self.cur_lba * self.BLOCK
        for i in range(self.BLOCK):
            byte = disk_read(base + i)  # noqa: F821
            self.databuf[i] = byte
        return 0

    def flush_data_block(self):
        base = self.cur_lba * self.BLOCK
        for i in range(self.BLOCK):
            disk_write(base + i, self.databuf[i])  # noqa: F821
        self.cur_lba += 1
        self.data_pos = 0
        self.xfer_len -= self.BLOCK
        if self.xfer_len <= 0:
            self.phase = self.P_STATUS
            self.raise_irq()
        return 0

    def next_data_block(self):
        self.cur_lba += 1
        self.data_pos = 0
        self.xfer_len -= self.BLOCK
        if self.xfer_len <= 0:
            self.phase = self.P_STATUS
            self.raise_irq()
        else:
            self.stage_block()
        return 0

    def do_transfer_info(self):
        """TI: acknowledge the current phase (data already streamed via
        the data ports in this model)."""
        if self.phase == self.P_STATUS:
            self.raise_irq()
        return 0

    def raise_irq(self):
        self.status = self.status | 0x80
        self.irq(1)

    def on_irq(self, level):
        self.irq_level = level
        set_irq(level)  # noqa: F821
        return 0


@register_device
class SCSI(Device):
    """The wrapped ESP controller + SCSI disk."""

    LOGIC = ESPLogic
    NAME = "scsi"
    CVES = (
        CveGate("CVE-2015-5158", "VULN_5158", "2.4.1",
                "vendor-group CDB length parsed as huge; copy overruns "
                "cdb"),
        CveGate("CVE-2016-4439", "VULN_4439", "2.6.1",
                "DMA SELECT copies ti_size bytes into 16-byte cmdbuf"),
    )

    def __init__(self, qemu_version: str = "99.0.0",
                 disk: DiskImage = None, memory: GuestMemory = None,
                 irq_line: IRQLine = None, **kwargs):
        self.disk = disk if disk is not None else DiskImage(32 << 20)
        self.memory = memory if memory is not None else GuestMemory()
        self.irq_line = (irq_line if irq_line is not None
                         else IRQLine("scsi"))
        super().__init__(qemu_version=qemu_version, **kwargs)

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "disk_read", lambda m, off: self.disk.read_byte(off), cost=30)
        self.machine.bind_extern(
            "disk_write", lambda m, off, v: self.disk.write_byte(off, v),
            cost=30)
        self.machine.bind_extern(
            "dma_read", lambda m, addr: self.memory.read_byte(addr), cost=40)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def reset(self) -> None:
        self.machine.set_funcptr("irq", "on_irq")
