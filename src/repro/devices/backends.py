"""Host-side backends devices talk to through externs.

These play the role of QEMU's block layer, net layer, and IRQ
infrastructure: guest-visible behaviour flows through the device models;
the backends just store bytes and count events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import WorkloadError

SECTOR_SIZE = 512


class DiskImage:
    """Flat byte-addressable backing store (the block layer)."""

    def __init__(self, size: int):
        if size <= 0:
            raise WorkloadError("disk size must be positive")
        self.size = size
        self.data = bytearray(size)
        self.reads = 0
        self.writes = 0

    def read_byte(self, offset: int) -> int:
        self.reads += 1
        if 0 <= offset < self.size:
            return self.data[offset]
        return 0    # reads off the end return zeros, like a sparse image

    def write_byte(self, offset: int, value: int) -> None:
        self.writes += 1
        if 0 <= offset < self.size:
            self.data[offset] = value & 0xFF

    def read_block(self, offset: int, length: int) -> bytes:
        return bytes(self.read_byte(offset + i) for i in range(length))

    def write_block(self, offset: int, payload: bytes) -> None:
        for i, byte in enumerate(payload):
            self.write_byte(offset + i, byte)


class GuestMemory:
    """Guest physical memory, accessed by devices via DMA externs."""

    def __init__(self, size: int = 1 << 20):
        self.size = size
        self.data = bytearray(size)
        self.dma_reads = 0
        self.dma_writes = 0

    def read_byte(self, addr: int) -> int:
        self.dma_reads += 1
        if 0 <= addr < self.size:
            return self.data[addr]
        return 0

    def write_byte(self, addr: int, value: int) -> None:
        self.dma_writes += 1
        if 0 <= addr < self.size:
            self.data[addr] = value & 0xFF

    def write_block(self, addr: int, payload: bytes) -> None:
        self.data[addr:addr + len(payload)] = payload

    def read_block(self, addr: int, length: int) -> bytes:
        return bytes(self.data[addr:addr + length])


class IRQLine:
    """One interrupt line with edge counting (guest-visible via the VM)."""

    def __init__(self, name: str = "irq"):
        self.name = name
        self.level = 0
        self.raise_count = 0

    def set_level(self, level: int) -> None:
        if level:
            self.raise_count += 1
        self.level = 1 if level else 0


@dataclass
class NetFrame:
    payload: bytes
    timestamp: int = 0


class NetBackend:
    """User-mode-networking stand-in: queues in both directions."""

    def __init__(self) -> None:
        self.rx_queue: Deque[NetFrame] = deque()   # host -> guest
        self.tx_frames: List[NetFrame] = []        # guest -> host
        self.tx_bytes = 0
        self.rx_bytes = 0

    def inject(self, payload: bytes) -> None:
        """Host side delivers a frame toward the guest."""
        self.rx_queue.append(NetFrame(bytes(payload)))

    def pop_rx(self) -> Optional[NetFrame]:
        if self.rx_queue:
            frame = self.rx_queue.popleft()
            self.rx_bytes += len(frame.payload)
            return frame
        return None

    def transmit(self, payload: bytes) -> None:
        self.tx_frames.append(NetFrame(bytes(payload)))
        self.tx_bytes += len(payload)
