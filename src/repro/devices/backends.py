"""Host-side backends devices talk to through externs.

These play the role of QEMU's block layer, net layer, and IRQ
infrastructure: guest-visible behaviour flows through the device models;
the backends just store bytes and count events.

Backing stores are **sparse**: a :class:`DiskImage` or
:class:`GuestMemory` allocates fixed-size chunks on first write and
answers zeros everywhere else — exactly the observable behaviour the old
dense ``bytearray`` gave (zero-filled at construction), at a fraction of
the footprint.  That is what makes four-digit tenant fleets feasible: a
guarded instance that touches a few sectors of a 32 MB SCSI disk costs
kilobytes, not megabytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.errors import WorkloadError

SECTOR_SIZE = 512

_CHUNK_BITS = 16
_CHUNK_SIZE = 1 << _CHUNK_BITS          # 64 KiB allocation granule
_CHUNK_MASK = _CHUNK_SIZE - 1


class _SparseBytes:
    """Chunked, zero-default byte store shared by the two backends."""

    __slots__ = ("size", "_chunks")

    def __init__(self, size: int):
        self.size = size
        self._chunks: Dict[int, bytearray] = {}

    def get(self, offset: int) -> int:
        chunk = self._chunks.get(offset >> _CHUNK_BITS)
        if chunk is None:
            return 0
        return chunk[offset & _CHUNK_MASK]

    def set(self, offset: int, value: int) -> None:
        index = offset >> _CHUNK_BITS
        chunk = self._chunks.get(index)
        if chunk is None:
            chunk = self._chunks[index] = bytearray(_CHUNK_SIZE)
        chunk[offset & _CHUNK_MASK] = value

    def read_range(self, offset: int, length: int) -> bytes:
        """Chunk-spanning read; unallocated and out-of-range areas are
        zeros (in-range) / absent (clamped at ``size``)."""
        if offset < 0:
            length += offset
            offset = 0
        end = min(offset + max(0, length), self.size)
        if offset >= end:
            return b""
        parts: List[bytes] = []
        pos = offset
        while pos < end:
            index = pos >> _CHUNK_BITS
            start = pos & _CHUNK_MASK
            take = min(_CHUNK_SIZE - start, end - pos)
            chunk = self._chunks.get(index)
            if chunk is None:
                parts.append(bytes(take))
            else:
                parts.append(bytes(chunk[start:start + take]))
            pos += take
        return b"".join(parts)

    def write_range(self, offset: int, payload: bytes) -> None:
        """Chunk-spanning write, clamped to ``[0, size)``."""
        if offset < 0:
            payload = payload[-offset:]
            offset = 0
        end = min(offset + len(payload), self.size)
        pos = offset
        while pos < end:
            index = pos >> _CHUNK_BITS
            start = pos & _CHUNK_MASK
            take = min(_CHUNK_SIZE - start, end - pos)
            chunk = self._chunks.get(index)
            if chunk is None:
                chunk = self._chunks[index] = bytearray(_CHUNK_SIZE)
            chunk[start:start + take] = payload[pos - offset:
                                                pos - offset + take]
            pos += take

    @property
    def allocated_bytes(self) -> int:
        return len(self._chunks) * _CHUNK_SIZE


class DiskImage:
    """Byte-addressable backing store (the block layer), sparse."""

    def __init__(self, size: int):
        if size <= 0:
            raise WorkloadError("disk size must be positive")
        self.size = size
        self._store = _SparseBytes(size)
        self.reads = 0
        self.writes = 0

    @property
    def allocated_bytes(self) -> int:
        """Host memory actually committed to this image."""
        return self._store.allocated_bytes

    def read_byte(self, offset: int) -> int:
        self.reads += 1
        if 0 <= offset < self.size:
            return self._store.get(offset)
        return 0    # reads off the end return zeros, like a sparse image

    def write_byte(self, offset: int, value: int) -> None:
        self.writes += 1
        if 0 <= offset < self.size:
            self._store.set(offset, value & 0xFF)

    def read_block(self, offset: int, length: int) -> bytes:
        self.reads += length
        data = self._store.read_range(offset, length)
        if len(data) < length:      # zeros past the end, as per byte reads
            data += bytes(length - len(data))
        return data

    def write_block(self, offset: int, payload: bytes) -> None:
        self.writes += len(payload)
        masked = bytes(b & 0xFF for b in payload)
        self._store.write_range(offset, masked)


class GuestMemory:
    """Guest physical memory, accessed by devices via DMA externs."""

    def __init__(self, size: int = 1 << 20):
        self.size = size
        self._store = _SparseBytes(size)
        self.dma_reads = 0
        self.dma_writes = 0

    @property
    def allocated_bytes(self) -> int:
        """Host memory actually committed for this guest."""
        return self._store.allocated_bytes

    def read_byte(self, addr: int) -> int:
        self.dma_reads += 1
        if 0 <= addr < self.size:
            return self._store.get(addr)
        return 0

    def write_byte(self, addr: int, value: int) -> None:
        self.dma_writes += 1
        if 0 <= addr < self.size:
            self._store.set(addr, value & 0xFF)

    def write_block(self, addr: int, payload: bytes) -> None:
        self._store.write_range(addr, bytes(payload))

    def read_block(self, addr: int, length: int) -> bytes:
        return self._store.read_range(addr, length)


class IRQLine:
    """One interrupt line with edge counting (guest-visible via the VM)."""

    def __init__(self, name: str = "irq"):
        self.name = name
        self.level = 0
        self.raise_count = 0

    def set_level(self, level: int) -> None:
        if level:
            self.raise_count += 1
        self.level = 1 if level else 0


@dataclass
class NetFrame:
    payload: bytes
    timestamp: int = 0


class NetBackend:
    """User-mode-networking stand-in: queues in both directions."""

    def __init__(self) -> None:
        self.rx_queue: Deque[NetFrame] = deque()   # host -> guest
        self.tx_frames: List[NetFrame] = []        # guest -> host
        self.tx_bytes = 0
        self.rx_bytes = 0

    def inject(self, payload: bytes) -> None:
        """Host side delivers a frame toward the guest."""
        self.rx_queue.append(NetFrame(bytes(payload)))

    def pop_rx(self) -> Optional[NetFrame]:
        if self.rx_queue:
            frame = self.rx_queue.popleft()
            self.rx_bytes += len(frame.payload)
            return frame
        return None

    def transmit(self, payload: bytes) -> None:
        self.tx_frames.append(NetFrame(bytes(payload)))
        self.tx_bytes += len(payload)
