"""FDC — floppy disk controller (QEMU ``hw/block/fdc.c`` analogue).

Implements the 82078-style programming model QEMU emulates: a command
FIFO driven through the data port, MSR/DOR/DSR registers, a three-phase
command cycle (command → parameter → execution/result), DMA sector
transfers, and SENSE INTERRUPT semantics.

Seeded vulnerabilities:

* **CVE-2015-3456 (Venom, fixed 2.3.1 — we gate at 2.4.0 like the paper's
  v2.3.0 test build)** — in the parameter phase the FIFO index
  ``data_pos`` is incremented without bound, and the DRIVE SPECIFICATION /
  READ ID handlers can return early (invalid head bit) *without resetting
  the FIFO state*, so subsequent data-port writes run ``fifo[data_pos++]``
  off the end of the 512-byte FIFO into ``data_pos``/``data_len``/…
* **CVE-2016-1568-analogue (UAF, fixed 2.6.0)** — the DMA completion
  callback is not re-initialized when a transfer is aborted by a DOR
  reset; a crafted restart invokes the *stale* callback.  The pointer
  still targets a block the specification saw in training, which is why
  SEDSpec (by design) misses this one while Nioh's manual state machine
  catches it — the paper's documented miss.
"""

from __future__ import annotations

from repro.compiler import DeviceLogic, arr, fld, ptr, reg
from repro.devices.backends import DiskImage, GuestMemory, IRQLine
from repro.devices.base import CveGate, Device, register_device

SECTOR_LEN = 512
FDC_CAPACITY = 2_880 * 1024 // 2   # 1.44MB media by default (2.88MB max)

# Command bytes (low 5 bits select; high bits are MT/MFM/SK flags).
CMD_SPECIFY = 0x03
CMD_SENSE_DRIVE = 0x04
CMD_WRITE = 0x05            # issued as 0x45 (MFM)
CMD_READ = 0x06             # issued as 0x46
CMD_RECALIBRATE = 0x07
CMD_SENSE_INT = 0x08
CMD_READ_ID = 0x0A          # issued as 0x4A
CMD_SEEK = 0x0F
CMD_FORMAT = 0x0D           # format track (issued as 0x4D)
CMD_DUMPREG = 0x0E          # rare
CMD_VERSION = 0x10          # rare
CMD_CONFIGURE = 0x13        # rare
CMD_DRV_SPEC = 0x0E + 0x80  # 0x8E drive specification (rare, Venom path)

PHASE_CMD = 0
PHASE_PARAM = 1
PHASE_RESULT = 2

MSR_RQM = 0x80
MSR_DIO = 0x40
MSR_BUSY = 0x10


class FDCLogic(DeviceLogic):
    """Compilable device logic for the floppy controller."""

    STRUCT = "FDCtrl"
    FIELDS = (
        reg("sra", "u8", doc="status register A"),
        reg("srb", "u8", doc="status register B"),
        reg("dor", "u8", doc="digital output register"),
        reg("tdr", "u8", doc="tape drive register"),
        reg("msr", "u8", doc="main status register"),
        reg("dsr", "u8", doc="data rate select register"),
        fld("phase", "u8", doc="command cycle phase"),
        arr("fifo", "u8", SECTOR_LEN, doc="command/data FIFO"),
        fld("data_pos", "i32", doc="FIFO cursor (the Venom variable)"),
        fld("data_len", "i32", doc="bytes expected/available in FIFO"),
        fld("cur_cmd", "u8", doc="command being processed"),
        fld("st0", "u8"), fld("st1", "u8"), fld("st2", "u8"),
        fld("track", "u8"), fld("head", "u8"), fld("sector", "u8"),
        fld("dma_addr", "u32", doc="guest DMA buffer address"),
        ptr("irq", doc="interrupt callback"),
        ptr("dma_cb", doc="DMA completion callback (UAF target)"),
        fld("int_pending", "u8"),
        fld("dma_active", "u8", doc="transfer in flight"),
    )
    CONSTS = {
        "VULN_VENOM": 0, "VULN_UAF": 0,
        "PHASE_CMD": PHASE_CMD, "PHASE_PARAM": PHASE_PARAM,
        "PHASE_RESULT": PHASE_RESULT,
        "CMD_SPECIFY": CMD_SPECIFY, "CMD_SENSE_DRIVE": CMD_SENSE_DRIVE,
        "CMD_WRITE": CMD_WRITE, "CMD_READ": CMD_READ,
        "CMD_RECALIBRATE": CMD_RECALIBRATE, "CMD_SENSE_INT": CMD_SENSE_INT,
        "CMD_READ_ID": CMD_READ_ID, "CMD_SEEK": CMD_SEEK,
        "CMD_DUMPREG": CMD_DUMPREG, "CMD_VERSION": CMD_VERSION,
        "CMD_CONFIGURE": CMD_CONFIGURE, "CMD_FORMAT": CMD_FORMAT,
        "SECTOR_LEN": SECTOR_LEN,
    }
    EXTERNS = ("disk_read", "disk_write", "dma_read", "dma_write",
               "set_irq")
    ENTRIES = {
        "pmio:write:2": "write_dor",
        "pmio:read:2": "read_dor",
        "pmio:read:4": "read_msr",
        "pmio:write:4": "write_dsr",
        "pmio:write:5": "write_fifo",
        "pmio:read:5": "read_fifo",
        "pmio:write:8": "write_dma_page",
    }

    # -- register access ------------------------------------------------------

    def read_msr(self):
        return self.msr

    def read_dor(self):
        return self.dor

    def write_dsr(self, value):
        self.dsr = value
        if value & 0x80:
            self.soft_reset()
        return 0

    def write_dor(self, value):
        old = self.dor
        self.dor = value
        if (value & 0x04) == 0:
            # Controller held in reset.
            self.msr = 0
            if self.VULN_UAF:
                # CVE-2016-1568 analogue: the cancel/initialization code
                # for the in-flight transfer is MISSING — dma_active stays
                # set and the host block layer will still fire the stale
                # completion callback.  No extra branch exists here, so
                # the execution specification contains no transition to
                # violate (the paper's documented miss).
                pass
            else:
                self.dma_active = 0
        if ((value & 0x04) != 0) and ((old & 0x04) == 0):
            # Coming out of reset: interrupt + clean command state.
            self.soft_reset()
        return 0

    def write_dma_page(self, value):
        self.dma_addr = value
        return 0

    def soft_reset(self):
        self.phase = self.PHASE_CMD
        self.data_pos = 0
        self.data_len = 0
        self.msr = 0x80
        self.st0 = 0xC0
        self.int_pending = 1
        self.raise_irq()

    # -- FIFO: the three-phase command cycle ------------------------------------

    def write_fifo(self, value):
        if self.phase == self.PHASE_CMD:
            self.start_command(value)
        elif self.phase == self.PHASE_PARAM:
            if self.VULN_VENOM:
                # CVE-2015-3456: unbounded FIFO cursor.
                self.fifo[self.data_pos] = value
                self.data_pos += 1
            else:
                pos = self.data_pos & 511       # the upstream fix: masking
                self.fifo[pos] = value
                self.data_pos = pos + 1
            if self.data_pos == self.data_len:
                self.execute_command()
        else:
            # Data-port write in the result phase: protocol violation.
            self.st0 = 0x80
        return 0

    def read_fifo(self):
        if self.phase == self.PHASE_RESULT:
            if self.data_pos < self.data_len:
                value = self.fifo[self.data_pos]
                self.data_pos += 1
                if self.data_pos == self.data_len:
                    self.reset_fifo()
                return value
            self.reset_fifo()
            return 0
        self.st0 = 0x80
        return 0

    def reset_fifo(self):
        self.phase = self.PHASE_CMD
        self.data_pos = 0
        self.data_len = 0
        self.msr = 0x80

    def start_command(self, value):
        cmd = value & 0x1F
        self.cur_cmd = cmd
        self.msr = 0x90                       # RQM | BUSY
        sed_command_decision(cmd)  # noqa: F821
        if cmd == self.CMD_SPECIFY:
            self.begin_params(2)
        elif cmd == self.CMD_SENSE_DRIVE:
            self.begin_params(1)
        elif cmd == self.CMD_RECALIBRATE:
            self.begin_params(1)
        elif cmd == self.CMD_SENSE_INT:
            self.handle_sense_int()
        elif cmd == self.CMD_SEEK:
            self.begin_params(2)
        elif cmd == self.CMD_READ:
            self.begin_params(8)
            self.dma_active = 1
        elif cmd == self.CMD_WRITE:
            self.begin_params(8)
            self.dma_active = 1
        elif cmd == self.CMD_READ_ID:
            self.begin_params(1)
        elif cmd == self.CMD_FORMAT:
            self.begin_params(6)
        elif cmd == self.CMD_DUMPREG:
            self.handle_dumpreg()
        elif cmd == self.CMD_VERSION:
            self.begin_results(1)
            self.fifo[0] = 0x90
        elif cmd == self.CMD_CONFIGURE:
            self.begin_params(3)
        else:
            # Unknown command: single 0x80 result, like QEMU.
            self.begin_results(1)
            self.fifo[0] = 0x80
        sed_command_end()  # noqa: F821
        return 0

    def begin_params(self, count):
        self.phase = self.PHASE_PARAM
        self.data_pos = 0
        self.data_len = count

    def begin_results(self, count):
        self.phase = self.PHASE_RESULT
        self.data_pos = 0
        self.data_len = count
        self.msr = 0xD0                       # RQM | DIO | BUSY

    # -- command execution --------------------------------------------------------

    def execute_command(self):
        cmd = self.cur_cmd
        if cmd == self.CMD_SPECIFY:
            self.reset_fifo()
        elif cmd == self.CMD_SENSE_DRIVE:
            self.begin_results(1)
            self.fifo[0] = 0x28 | (self.track == 0)
        elif cmd == self.CMD_RECALIBRATE:
            self.track = 0
            self.st0 = 0x20
            self.int_pending = 1
            self.reset_fifo()
            self.raise_irq()
        elif cmd == self.CMD_SEEK:
            self.track = self.fifo[1]
            self.st0 = 0x20
            self.int_pending = 1
            self.reset_fifo()
            self.raise_irq()
        elif cmd == self.CMD_READ:
            self.do_transfer(0)
        elif cmd == self.CMD_WRITE:
            self.do_transfer(1)
        elif cmd == self.CMD_READ_ID:
            self.handle_read_id()
        elif cmd == self.CMD_FORMAT:
            self.do_format_track()
        elif cmd == self.CMD_CONFIGURE:
            self.reset_fifo()
        else:
            self.reset_fifo()
        return 0

    def handle_sense_int(self):
        self.begin_results(2)
        self.fifo[0] = self.st0
        self.fifo[1] = self.track
        self.int_pending = 0
        self.irq(0)

    def handle_dumpreg(self):
        self.begin_results(10)
        self.fifo[0] = self.track
        self.fifo[1] = 0
        self.fifo[2] = 0
        self.fifo[3] = 0
        self.fifo[4] = self.head
        self.fifo[5] = self.sector
        self.fifo[6] = 0
        self.fifo[7] = self.dsr
        self.fifo[8] = self.st0
        self.fifo[9] = self.st1

    def handle_read_id(self):
        head = self.fifo[0]
        if self.VULN_VENOM:
            if head & 0x80:
                # BUG: early return without resetting the FIFO state —
                # phase stays PARAM, data_pos keeps marching (Venom).
                self.st1 = 0x01
                return 0
        self.head = head & 0x04
        self.st0 = 0x20
        self.result7()
        self.raise_irq()
        return 0

    def do_transfer(self, direction):
        """READ/WRITE: move one sector between media and guest memory."""
        self.track = self.fifo[1]
        self.head = self.fifo[2]
        self.sector = self.fifo[3]
        offset = self.chs_offset()
        self.dma_active = 1
        if direction == 0:
            for i in range(self.SECTOR_LEN):
                byte = disk_read(offset + i)  # noqa: F821
                dma_write(self.dma_addr + i, byte)  # noqa: F821
        else:
            for i in range(self.SECTOR_LEN):
                byte = dma_read(self.dma_addr + i)  # noqa: F821
                disk_write(offset + i, byte)  # noqa: F821
        self.dma_active = 0
        self.st0 = 0x20
        self.st1 = 0
        self.result7()
        self.dma_cb(1)
        return 0

    def do_format_track(self):
        """FORMAT TRACK: fill every sector of the current track with the
        filler byte (params: drive, N, sectors/track, gap, filler, 0)."""
        self.head = self.fifo[1] & 1
        sectors = self.fifo[2]
        filler = self.fifo[4]
        if sectors > 18:
            sectors = 18
        track_base = (self.track * 2 + self.head) * 18 * self.SECTOR_LEN
        for s in range(sectors):
            base = track_base + s * self.SECTOR_LEN
            for i in range(self.SECTOR_LEN):
                disk_write(base + i, filler)  # noqa: F821
        self.st0 = 0x20
        self.result7()
        self.raise_irq()
        return 0

    def chs_offset(self):
        """CHS -> byte offset: 80 tracks x 2 heads x 18 sectors x 512."""
        lba = ((self.track * 2 + (self.head & 1)) * 18
               + (self.sector - 1))
        return lba * self.SECTOR_LEN

    def result7(self):
        """Standard 7-byte result block of read/write/read-id."""
        self.begin_results(7)
        self.fifo[0] = self.st0
        self.fifo[1] = self.st1
        self.fifo[2] = self.st2
        self.fifo[3] = self.track
        self.fifo[4] = self.head
        self.fifo[5] = self.sector
        self.fifo[6] = 2
        self.int_pending = 1

    # -- interrupts -----------------------------------------------------------------

    def raise_irq(self):
        self.irq(1)

    def on_irq(self, level):
        set_irq(level)  # noqa: F821
        return 0

    def on_dma_done(self, status):
        """DMA completion callback (the funcptr the UAF reuses)."""
        self.int_pending = 1
        self.irq(1)
        return 0


@register_device
class FDC(Device):
    """The wrapped floppy controller with its backends."""

    LOGIC = FDCLogic
    NAME = "fdc"
    CVES = (
        CveGate("CVE-2015-3456", "VULN_VENOM", "2.4.0",
                "Venom: FIFO cursor runs off the 512-byte FIFO"),
        CveGate("CVE-2016-1568", "VULN_UAF", "2.6.0",
                "stale DMA completion callback fires after abort "
                "(the paper's documented SEDSpec miss)"),
    )

    def __init__(self, qemu_version: str = "99.0.0",
                 disk: DiskImage = None, memory: GuestMemory = None,
                 irq_line: IRQLine = None, **kwargs):
        self.disk = disk if disk is not None else DiskImage(FDC_CAPACITY)
        self.memory = memory if memory is not None else GuestMemory()
        self.irq_line = irq_line if irq_line is not None else IRQLine("fdc")
        super().__init__(qemu_version=qemu_version, **kwargs)

    def handle_io(self, key, args=()):
        result = super().handle_io(key, args)
        if (self.state.read_field("dma_active")
                and not self.state.read_field("dor") & 0x04):
            # The controller was reset while a transfer was in flight but
            # the transfer was never cancelled (the vulnerable build's
            # missing code): the host block layer fires the stale
            # completion callback asynchronously — outside any guest I/O
            # round, therefore outside SEDSpec's checking window (the
            # paper's documented miss case).
            self.state.write_field("dma_active", 0)
            self.machine.run_function("on_dma_done", (0,))
        return result

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "disk_read", lambda m, off: self.disk.read_byte(off), cost=30)
        self.machine.bind_extern(
            "disk_write", lambda m, off, v: self.disk.write_byte(off, v),
            cost=30)
        self.machine.bind_extern(
            "dma_read", lambda m, addr: self.memory.read_byte(addr), cost=40)
        self.machine.bind_extern(
            "dma_write", lambda m, addr, v: self.memory.write_byte(addr, v),
            cost=40)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def reset(self) -> None:
        self.machine.set_funcptr("irq", "on_irq")
        self.machine.set_funcptr("dma_cb", "on_dma_done")
        self.state.write_field("msr", MSR_RQM)
        self.state.write_field("dor", 0x0C)
        self.state.write_field("phase", PHASE_CMD)
