"""Device framework: versioned compilation, extern binding, I/O dispatch.

A :class:`Device` wraps a compiled :class:`DeviceLogic` the way QEMU wraps
a device model: it owns the control structure (via the interpreter
machine), binds host-side helpers (DMA, IRQ, backing media), and exposes
the PMIO/MMIO handlers that the VM dispatches into.

``qemu_version`` drives compile-time gating: every device declares which
CVEs its source carries and the version each was fixed in; building at an
older version folds the vulnerable code path in, a newer one the patched
path — one source tree, two binaries, exactly like checking out the
matching QEMU tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

from repro.compiler import DeviceLogic, compile_device
from repro.errors import DeviceFault, WorkloadError
from repro.interp import Machine
from repro.ir import Program, StateMemory


def parse_version(version: str) -> Tuple[int, ...]:
    """``"2.6.0"`` → ``(2, 6, 0)`` (strict numeric dotted versions)."""
    try:
        return tuple(int(part) for part in version.split("."))
    except ValueError:
        raise WorkloadError(f"bad version string {version!r}") from None


def version_lt(a: str, b: str) -> bool:
    return parse_version(a) < parse_version(b)


@dataclass(frozen=True)
class CveGate:
    """One seeded vulnerability: the const gating it and its fix version."""

    cve: str
    const: str
    fixed_in: str
    description: str = ""

    def active_in(self, qemu_version: str) -> bool:
        return version_lt(qemu_version, self.fixed_in)


#: (logic class, sorted const overrides) -> frozen Program.  A frozen
#: program is immutable and every Machine owns its own StateMemory, so
#: devices built at the same version can share one compile (and with it
#: the per-program compiled/bytecode backend artifacts cached on it).
_PROGRAM_CACHE: Dict[Tuple[type, Tuple[Tuple[str, int], ...]],
                     Program] = {}


def _compile_cached(logic: Type[DeviceLogic],
                    overrides: Dict[str, int]) -> Program:
    key = (logic, tuple(sorted(overrides.items())))
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = compile_device(logic, const_overrides=overrides)
        _PROGRAM_CACHE[key] = program
    return program


class Device:
    """Base class for the five emulated devices.

    Subclasses set :attr:`LOGIC` (the compilable DeviceLogic),
    :attr:`NAME`, :attr:`CVES` (gates), and override :meth:`bind_externs`
    and :meth:`reset` for device-specific wiring.
    """

    LOGIC: Type[DeviceLogic]
    NAME: str = ""
    CVES: Tuple[CveGate, ...] = ()
    #: extern name -> cycle cost (device-specific overrides)
    EXTERN_COSTS: Dict[str, int] = {}

    def __init__(self, qemu_version: str = "99.0.0",
                 max_steps: int = 200_000, backend: str = "compiled"):
        self.qemu_version = qemu_version
        overrides = {gate.const: int(gate.active_in(qemu_version))
                     for gate in self.CVES}
        self.program: Program = _compile_cached(self.LOGIC, overrides)
        self.machine = Machine(self.program, max_steps=max_steps,
                               backend=backend)
        self.halted = False
        self.fault: Optional[DeviceFault] = None
        self.bind_externs()
        self.reset()

    # -- subclass hooks ------------------------------------------------------

    def bind_externs(self) -> None:
        """Bind host helpers into the machine (override per device)."""

    def reset(self) -> None:
        """Device reset: initial register values, funcptr wiring."""

    # -- introspection ----------------------------------------------------------

    @property
    def state(self) -> StateMemory:
        return self.machine.state

    def active_cves(self) -> Tuple[str, ...]:
        return tuple(g.cve for g in self.CVES
                     if g.active_in(self.qemu_version))

    def snapshot(self) -> StateMemory:
        return self.state.snapshot()

    # -- I/O entry ----------------------------------------------------------------

    def handle_io(self, key: str, args: Tuple[int, ...] = ()) -> Optional[int]:
        """Run one I/O round; device faults latch the device into a halted
        (crashed) condition, the analogue of the QEMU worker dying."""
        if self.halted:
            raise DeviceFault(f"{self.NAME} is halted after a fault",
                              device=self.NAME, kind="halted")
        try:
            return self.machine.run_entry(key, args)
        except DeviceFault as fault:
            self.halted = True
            self.fault = fault
            raise

    def io_keys(self) -> Tuple[str, ...]:
        return tuple(self.program.entry_handlers)

    # -- helpers for speculation (sync oracle) -----------------------------------

    def speculative_machine(self) -> Machine:
        """A machine sharing the program but running on a state snapshot,
        with side-effecting externs neutered — used by the sync oracle."""
        spec_machine = Machine(self.program, state=self.snapshot(),
                               max_steps=self.machine.max_steps,
                               backend=self.machine.backend)
        self._bind_externs_for(spec_machine, speculative=True)
        return spec_machine

    def _bind_externs_for(self, machine: Machine,
                          speculative: bool = False) -> None:
        """Default: copy the live machine's externs; devices whose externs
        have host side effects override this to neuter them."""
        for name, fn in self.machine._externs.items():   # noqa: SLF001
            cost = self.machine._extern_cost[name]        # noqa: SLF001
            machine.bind_extern(name, fn, cost=cost)


Factory = Callable[..., Device]

_REGISTRY: Dict[str, Type[Device]] = {}


def register_device(cls: Type[Device]) -> Type[Device]:
    """Class decorator: make a device constructible by name."""
    if not cls.NAME:
        raise WorkloadError(f"{cls.__name__} has no NAME")
    _REGISTRY[cls.NAME] = cls
    return cls


def device_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def create_device(name: str, **kwargs) -> Device:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown device {name!r}; known: {device_names()}") from None
    return cls(**kwargs)
