"""PCNet — AMD PCnet-PCI II network adapter (QEMU ``hw/net/pcnet.c``).

Programming model kept from the real part: a register address port (RAP)
selecting a CSR, a data port (RDP) reading/writing the selected CSR,
descriptor rings in guest memory (simplified to 4-byte descriptors:
own/flags/len-lo/len-hi + a separate address table via CSRs), and a
transmit-demand bit in CSR0.  Loopback mode (CSR15.LOOP) feeds transmitted
frames back into the receive path, which is where two of the CVEs live.

Seeded vulnerabilities (versions per the paper's Table III):

* **CVE-2015-7504** (fixed 2.5.0) — loopback receive appends the 4-byte
  FCS/CRC at the end of the frame using a *temporary* cursor local with no
  bound check; a 4093..4096-byte frame writes past ``buffer`` into the
  adjacent ``irq`` function pointer.  The parameter check is blind (the
  index never touches device state); the indirect-jump check catches the
  corrupted pointer at the completion interrupt.
* **CVE-2015-7512** (fixed 2.5.0) — chained transmit descriptors
  accumulate into ``buffer`` at ``xmit_pos`` without a total-length check;
  ``xmit_pos`` is device state, so the parameter check fires (and the
  corruption would also trip the indirect-jump check).
* **CVE-2016-7909** (fixed 2.7.0) — the receive-descriptor ring scan
  never terminates when the guest programs a ring length of zero: the
  wrap check resets the cursor before the completed-scan check can fire.
"""

from __future__ import annotations

from repro.compiler import DeviceLogic, arr, fld, ptr, reg
from repro.devices.backends import GuestMemory, IRQLine, NetBackend
from repro.devices.base import CveGate, Device, register_device

BUFFER_SIZE = 4096
MAX_FRAME = 4096

# CSR numbers (subset of the real part's map).
CSR_STATUS = 0        # CSR0: status/control (bit 0x0008 = TDMD)
CSR_IADR_LO = 1       # init block address
CSR_IADR_HI = 2
CSR_RDRA = 24         # receive ring base (lo)
CSR_TDRA = 30         # transmit ring base (lo)
CSR_RCVRL = 76        # receive ring length
CSR_XMTRL = 78        # transmit ring length
CSR_MODE = 15         # mode register (bit 0x0004 = LOOP)

TDMD = 0x0008
LOOP = 0x0004
RXON = 0x0020
TXON = 0x0010
INTR = 0x0080


class PCNetLogic(DeviceLogic):
    """Compilable PCnet logic."""

    STRUCT = "PCNetState"
    FIELDS = (
        reg("rap", "u8", doc="register address port"),
        reg("csr0", "u16", doc="status/control"),
        reg("csr1", "u16", doc="init block address low"),
        reg("csr2", "u16", doc="init block address high"),
        reg("csr15", "u16", doc="mode (loopback bit)"),
        fld("rdra", "u32", doc="rx descriptor ring base"),
        fld("tdra", "u32", doc="tx descriptor ring base"),
        fld("rcvrl", "u16", doc="rx ring length"),
        fld("xmtrl", "u16", doc="tx ring length"),
        fld("rx_idx", "u16", doc="rx ring cursor"),
        fld("tx_idx", "u16", doc="tx ring cursor"),
        fld("xmit_pos", "i32", doc="assembly cursor (CVE-2015-7512)"),
        fld("recv_pos", "i32", doc="receive cursor"),
        arr("buffer", "u8", BUFFER_SIZE, doc="frame assembly buffer"),
        ptr("irq", doc="interrupt callback — sits right after buffer"),
        fld("irq_level", "u8"),
        fld("rx_ready", "u8", doc="a received frame awaits the guest"),
        fld("rx_len", "i32", doc="length of the frame in buffer"),
    )
    CONSTS = {
        "VULN_7504": 0, "VULN_7512": 0, "VULN_RINGLOOP": 0,
        "CSR_STATUS": CSR_STATUS, "CSR_RDRA": CSR_RDRA,
        "CSR_IADR_LO": CSR_IADR_LO, "CSR_IADR_HI": CSR_IADR_HI,
        "CSR_TDRA": CSR_TDRA, "CSR_RCVRL": CSR_RCVRL,
        "CSR_XMTRL": CSR_XMTRL, "CSR_MODE": CSR_MODE,
        "TDMD": TDMD, "LOOP": LOOP,
        "BUFFER_SIZE": BUFFER_SIZE,
    }
    EXTERNS = ("dma_read", "dma_write", "net_tx_byte", "net_tx_done",
               "net_rx_byte", "set_irq")
    ENTRIES = {
        "pmio:write:2": "write_rap",
        "pmio:read:2": "read_rap",
        "pmio:write:0": "write_rdp",
        "pmio:read:0": "read_rdp",
        "pmio:write:4": "rx_notify",
        "pmio:read:6": "read_rx_byte",
    }

    # -- CSR access -------------------------------------------------------------

    def write_rap(self, value):
        self.rap = value
        return 0

    def read_rap(self):
        return self.rap

    def write_rdp(self, value):
        csr = self.rap
        sed_command_decision(csr)  # noqa: F821
        if csr == self.CSR_STATUS:
            self.csr0 = value
            if value & 1:
                self.do_init()
            if value & self.TDMD:
                self.do_transmit()
        elif csr == self.CSR_IADR_LO:
            self.csr1 = value
        elif csr == self.CSR_IADR_HI:
            self.csr2 = value
        elif csr == self.CSR_MODE:
            self.csr15 = value
        elif csr == self.CSR_RDRA:
            self.rdra = value
        elif csr == self.CSR_TDRA:
            self.tdra = value
        elif csr == self.CSR_RCVRL:
            self.rcvrl = value
        elif csr == self.CSR_XMTRL:
            self.xmtrl = value
        sed_command_end()  # noqa: F821
        return 0

    def read_rdp(self):
        csr = self.rap
        value = 0
        if csr == self.CSR_STATUS:
            value = self.csr0
        elif csr == self.CSR_MODE:
            value = self.csr15
        elif csr == self.CSR_RCVRL:
            value = self.rcvrl
        elif csr == self.CSR_XMTRL:
            value = self.xmtrl
        return value

    def do_init(self):
        """CSR0.INIT: read the init block from guest memory — mode word,
        ring bases, ring lengths — like the real part's initialization."""
        base = self.csr1 | (self.csr2 << 16)
        mode_lo = dma_read(base)  # noqa: F821
        mode_hi = dma_read(base + 1)  # noqa: F821
        self.csr15 = mode_lo | (mode_hi << 8)
        b0 = dma_read(base + 2)  # noqa: F821
        b1 = dma_read(base + 3)  # noqa: F821
        b2 = dma_read(base + 4)  # noqa: F821
        b3 = dma_read(base + 5)  # noqa: F821
        self.rdra = b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)
        b0 = dma_read(base + 6)  # noqa: F821
        b1 = dma_read(base + 7)  # noqa: F821
        b2 = dma_read(base + 8)  # noqa: F821
        b3 = dma_read(base + 9)  # noqa: F821
        self.tdra = b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)
        b0 = dma_read(base + 10)  # noqa: F821
        b1 = dma_read(base + 11)  # noqa: F821
        self.rcvrl = b0 | (b1 << 8)
        b0 = dma_read(base + 12)  # noqa: F821
        b1 = dma_read(base + 13)  # noqa: F821
        self.xmtrl = b0 | (b1 << 8)
        self.csr0 = self.csr0 | 0x0100        # IDON
        return 0

    # -- transmit path ----------------------------------------------------------------

    def do_transmit(self):
        """Walk chained tx descriptors, assemble the frame, send it.

        Descriptor i (4 bytes at tdra + 4*i): [own, flags, len_lo, len_hi];
        flags bit 1 = last-in-chain; payload follows at
        tdra + 4*xmtrl + 256*i (a fixed per-descriptor payload window).
        """
        self.xmit_pos = 0
        idx = self.tx_idx
        more = 1
        while more == 1:
            base = self.tdra + idx * 4
            own = dma_read(base)  # noqa: F821
            if own != 1:
                more = 0
            else:
                flags = dma_read(base + 1)  # noqa: F821
                lo = dma_read(base + 2)  # noqa: F821
                hi = dma_read(base + 3)  # noqa: F821
                count = lo | (hi << 8)
                if self.VULN_7512:
                    self.copy_tx_payload(idx, count)
                else:
                    # The fix: bound the accumulated frame length.
                    if self.xmit_pos + count <= self.BUFFER_SIZE:
                        self.copy_tx_payload(idx, count)
                    else:
                        self.csr0 = self.csr0 | 0x8000   # BABL error
                        more = 0
                dma_write(base, 0)  # noqa: F821  (give descriptor back)
                if flags & 2:
                    more = 0
                    self.finish_transmit()
                else:
                    idx += 1
                    if idx >= self.xmtrl:
                        idx = 0
        self.tx_idx = idx
        return 0

    def copy_tx_payload(self, idx, count):
        src = self.tdra + 4 * self.xmtrl + 256 * idx
        for i in range(count):
            byte = dma_read(src + i)  # noqa: F821
            self.buffer[self.xmit_pos] = byte
            self.xmit_pos += 1
        return 0

    def finish_transmit(self):
        if self.csr15 & self.LOOP:
            self.do_loopback_rx()
        else:
            for i in range(self.xmit_pos):
                net_tx_byte(self.buffer[i])  # noqa: F821
            net_tx_done(self.xmit_pos)  # noqa: F821
        self.csr0 = self.csr0 | 0x0200    # TINT
        self.raise_irq()
        return 0

    def do_loopback_rx(self):
        """Transmit looped back into receive: append FCS then deliver."""
        size = self.xmit_pos
        if self.VULN_7504:
            # CVE-2015-7504: the FCS lands at buffer[size..size+3] via a
            # temporary cursor — no bound check, no device-state index.
            pos = size
            self.buffer[pos] = 0x1D
            self.buffer[pos + 1] = 0x0F
            self.buffer[pos + 2] = 0xCD
            self.buffer[pos + 3] = 0x65
            self.rx_len = size + 4
        else:
            if size + 4 <= self.BUFFER_SIZE:
                pos = size
                self.buffer[pos] = 0x1D
                self.buffer[pos + 1] = 0x0F
                self.buffer[pos + 2] = 0xCD
                self.buffer[pos + 3] = 0x65
                self.rx_len = size + 4
            else:
                self.csr0 = self.csr0 | 0x1000    # MISS
                self.rx_len = 0
        self.rx_ready = 1
        self.recv_pos = 0
        return 0

    # -- receive path -------------------------------------------------------------------

    def rx_notify(self, length):
        """Host injected a frame of *length* bytes; pull it in."""
        slot = self.find_rx_desc()
        if slot < 0:
            self.csr0 = self.csr0 | 0x1000        # MISS
            return 0
        if length > self.BUFFER_SIZE:
            self.csr0 = self.csr0 | 0x1000
            return 0
        self.recv_pos = 0
        for i in range(length):
            byte = net_rx_byte(i)  # noqa: F821
            self.buffer[self.recv_pos] = byte
            self.recv_pos += 1
        self.rx_len = length
        self.rx_ready = 1
        self.recv_pos = 0
        self.rx_idx = slot
        dma_write(self.rdra + slot * 4, 0)  # noqa: F821
        self.csr0 = self.csr0 | 0x0400        # RINT
        self.raise_irq()
        return 0

    def find_rx_desc(self):
        """Scan the rx ring for a descriptor the device owns.

        The vulnerable build (CVE-2016-7909) wraps the cursor *before*
        testing scan completion, so a zero-length ring spins forever.
        """
        if self.VULN_RINGLOOP:
            idx = self.rx_idx
            while 1:
                own = dma_read(self.rdra + idx * 4)  # noqa: F821
                if own == 1:
                    return idx
                idx += 1
                if idx >= self.rcvrl:
                    idx = 0
                if idx == self.rx_idx:
                    return -1
        else:
            if self.rcvrl == 0:
                return -1                          # the upstream fix
            idx = self.rx_idx
            scanned = 0
            while scanned < self.rcvrl:
                own = dma_read(self.rdra + idx * 4)  # noqa: F821
                if own == 1:
                    return idx
                idx += 1
                if idx >= self.rcvrl:
                    idx = 0
                scanned += 1
            return -1
        return -1

    def read_rx_byte(self):
        """Guest drains the received frame one byte at a time."""
        if self.rx_ready == 0:
            return 0
        if self.recv_pos >= self.rx_len:
            self.rx_ready = 0
            return 0
        value = self.buffer[self.recv_pos]
        self.recv_pos += 1
        if self.recv_pos >= self.rx_len:
            self.rx_ready = 0
        return value

    # -- interrupts ------------------------------------------------------------------------

    def raise_irq(self):
        self.csr0 = self.csr0 | 0x0080     # INTR
        self.irq(1)

    def on_irq(self, level):
        self.irq_level = level
        set_irq(level)  # noqa: F821
        return 0


@register_device
class PCNet(Device):
    """The wrapped network adapter with its backends."""

    LOGIC = PCNetLogic
    NAME = "pcnet"
    CVES = (
        CveGate("CVE-2015-7504", "VULN_7504", "2.5.0",
                "loopback FCS append overruns buffer via a temp cursor"),
        CveGate("CVE-2015-7512", "VULN_7512", "2.5.0",
                "chained tx descriptors overrun buffer at xmit_pos"),
        CveGate("CVE-2016-7909", "VULN_RINGLOOP", "2.7.0",
                "rx ring scan never terminates on zero-length ring"),
    )

    def __init__(self, qemu_version: str = "99.0.0",
                 memory: GuestMemory = None, net: NetBackend = None,
                 irq_line: IRQLine = None, **kwargs):
        self.memory = memory if memory is not None else GuestMemory()
        self.net = net if net is not None else NetBackend()
        self.irq_line = (irq_line if irq_line is not None
                         else IRQLine("pcnet"))
        self._tx_staging: list = []
        self._rx_frame: bytes = b""
        kwargs.setdefault("max_steps", 60_000)
        super().__init__(qemu_version=qemu_version, **kwargs)

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "dma_read", lambda m, addr: self.memory.read_byte(addr), cost=40)
        self.machine.bind_extern(
            "dma_write", lambda m, addr, v: self.memory.write_byte(addr, v),
            cost=40)
        self.machine.bind_extern("net_tx_byte", self._net_tx_byte, cost=20)
        self.machine.bind_extern("net_tx_done", self._net_tx_done, cost=60)
        self.machine.bind_extern("net_rx_byte", self._net_rx_byte, cost=20)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def _net_tx_byte(self, machine, byte: int) -> None:
        self._tx_staging.append(byte & 0xFF)

    def _net_tx_done(self, machine, length: int) -> None:
        self.net.transmit(bytes(self._tx_staging[:length]))
        self._tx_staging.clear()

    def _net_rx_byte(self, machine, index: int) -> int:
        if 0 <= index < len(self._rx_frame):
            return self._rx_frame[index]
        return 0

    def reset(self) -> None:
        self.machine.set_funcptr("irq", "on_irq")
        self.state.write_field("rcvrl", 4)
        self.state.write_field("xmtrl", 4)

    # -- host-side helpers -------------------------------------------------------

    def stage_rx_frame(self, payload: bytes) -> None:
        """Make *payload* available to the next rx_notify round."""
        self._rx_frame = bytes(payload)
