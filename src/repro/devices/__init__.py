"""Emulated devices: framework, backends, and the five QEMU device models."""

from repro.devices.base import (
    CveGate, Device, create_device, device_names, register_device,
    version_lt,
)
from repro.devices.backends import (
    DiskImage, GuestMemory, IRQLine, NetBackend, NetFrame, SECTOR_SIZE,
)

__all__ = [
    "CveGate", "Device", "create_device", "device_names",
    "register_device", "version_lt",
    "DiskImage", "GuestMemory", "IRQLine", "NetBackend", "NetFrame",
    "SECTOR_SIZE",
]
