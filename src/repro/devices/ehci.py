"""USB EHCI — enhanced host controller with an attached USB mass-storage
device (QEMU ``hw/usb/hcd-ehci.c`` + ``hw/usb/core.c`` analogue).

The guest drives USB transactions token-by-token, as the EHCI schedule
walker would: a SETUP token followed by 8 setup bytes, then IN/OUT data
stages against ``data_buf``, then completion.  The attached device model
is a mass-storage-style function: control requests implement the standard
chapter-9 requests plus two vendor block-I/O requests the storage driver
uses (the paper benchmarks EHCI as the USB-storage interface).

Seeded vulnerability:

* **CVE-2020-14364** (fixed 5.1.1; the paper tests v5.1.0) — in
  ``do_token_setup`` the wLength from the setup packet is stored into
  ``setup_len`` *before* it is validated against ``data_buf``'s size; the
  later data stage indexes ``data_buf[setup_index]`` out of bounds.  The
  first out-of-bounds instance overruns past ``data_buf`` and rewrites
  ``setup_len``/``setup_index`` themselves (so the attacker steers the
  cursor — including to negative values); continuing writes reach the
  ``irq`` pointer.  Parameter check and indirect-jump check both fire,
  exactly as the paper reports.
"""

from __future__ import annotations

from repro.compiler import DeviceLogic, arr, fld, ptr, reg
from repro.devices.backends import DiskImage, GuestMemory, IRQLine
from repro.devices.base import CveGate, Device, register_device

DATA_BUF_SIZE = 4096
SECTOR = 512

# Token PIDs.
TOKEN_SETUP = 0x2D
TOKEN_IN = 0x69
TOKEN_OUT = 0xE1

# Setup-state machine (as in QEMU usb core).
SETUP_STATE_IDLE = 0
SETUP_STATE_SETUP = 1
SETUP_STATE_DATA = 2
SETUP_STATE_ACK = 3

# Standard requests + the storage function's vendor requests.
REQ_GET_STATUS = 0
REQ_SET_ADDRESS = 5
REQ_GET_DESCRIPTOR = 6
REQ_SET_CONFIGURATION = 9
REQ_BLOCK_WRITE = 0xF0      # vendor: wValue = LBA, data stage = payload
REQ_BLOCK_READ = 0xF1       # vendor: wValue = LBA, data stage = readback


class EHCILogic(DeviceLogic):
    """Compilable EHCI + USB-device logic."""

    STRUCT = "USBDevice"
    FIELDS = (
        reg("usbcmd", "u32", doc="EHCI command register"),
        reg("usbsts", "u32", doc="EHCI status register"),
        reg("portsc", "u32", doc="port status/control"),
        arr("setup_buf", "u8", 8, doc="8-byte SETUP packet"),
        arr("data_buf", "u8", DATA_BUF_SIZE, doc="control data stage"),
        fld("setup_len", "i32", doc="wLength (CVE-2020-14364)"),
        fld("setup_index", "i32", doc="data-stage cursor"),
        fld("setup_state", "u8"),
        fld("pkt_pos", "u8", doc="bytes of SETUP received"),
        fld("devaddr", "u8"), fld("config", "u8"),
        fld("cur_req", "u8", doc="bRequest being served"),
        fld("lba", "u32", doc="block address of the vendor request"),
        ptr("irq", doc="completion interrupt callback"),
        fld("irq_level", "u8"),
    )
    CONSTS = {
        "VULN_SETUPLEN": 0,
        "TOKEN_SETUP": TOKEN_SETUP, "TOKEN_IN": TOKEN_IN,
        "TOKEN_OUT": TOKEN_OUT,
        "ST_IDLE": SETUP_STATE_IDLE, "ST_SETUP": SETUP_STATE_SETUP,
        "ST_DATA": SETUP_STATE_DATA, "ST_ACK": SETUP_STATE_ACK,
        "REQ_GET_STATUS": REQ_GET_STATUS,
        "REQ_SET_ADDRESS": REQ_SET_ADDRESS,
        "REQ_GET_DESCRIPTOR": REQ_GET_DESCRIPTOR,
        "REQ_SET_CONFIGURATION": REQ_SET_CONFIGURATION,
        "REQ_BLOCK_WRITE": REQ_BLOCK_WRITE,
        "REQ_BLOCK_READ": REQ_BLOCK_READ,
        "DATA_BUF_SIZE": DATA_BUF_SIZE, "SECTOR": SECTOR,
    }
    EXTERNS = ("disk_read", "disk_write", "set_irq")
    #: EHCI is a memory-mapped controller: its operational registers
    #: live in an MMIO window, not in port space.
    ENTRIES = {
        "mmio:write:0": "write_usbcmd",
        "mmio:read:1": "read_usbsts",
        "mmio:write:2": "write_token",
        "mmio:write:3": "write_data",
        "mmio:read:3": "read_data",
    }

    # -- EHCI operational registers ---------------------------------------------

    def write_usbcmd(self, value):
        self.usbcmd = value
        if value & 1:
            self.usbsts = self.usbsts & 0xFFFFFFFE   # clear HCHalted
        else:
            self.usbsts = self.usbsts | 1
        return 0

    def read_usbsts(self):
        return self.usbsts

    # -- token layer ----------------------------------------------------------------

    def write_token(self, pid):
        if pid == self.TOKEN_SETUP:
            self.pkt_pos = 0
            self.setup_state = self.ST_SETUP
        elif pid == self.TOKEN_IN:
            if self.setup_state == self.ST_ACK:
                self.complete_control()
        elif pid == self.TOKEN_OUT:
            if self.setup_state == self.ST_ACK:
                self.complete_control()
        return 0

    def write_data(self, value):
        """One payload byte: SETUP stage fills setup_buf, DATA-out stage
        fills data_buf at setup_index (the CVE's write primitive)."""
        if self.setup_state == self.ST_SETUP:
            if self.pkt_pos < 8:
                self.setup_buf[self.pkt_pos] = value
                self.pkt_pos += 1
                if self.pkt_pos == 8:
                    self.do_token_setup()
        elif self.setup_state == self.ST_DATA:
            self.data_buf[self.setup_index] = value
            self.setup_index += 1
            if self.setup_index >= self.setup_len:
                self.handle_control_out()
        return 0

    def read_data(self):
        """DATA-in stage: the guest drains data_buf at setup_index."""
        if self.setup_state == self.ST_DATA:
            value = self.data_buf[self.setup_index]
            self.setup_index += 1
            if self.setup_index >= self.setup_len:
                self.setup_state = self.ST_ACK
            return value
        return 0

    # -- usb core: setup handling (the CVE lives here) ----------------------------------

    def do_token_setup(self):
        request_type = self.setup_buf[0]
        self.cur_req = self.setup_buf[1]
        wlen = self.setup_buf[6] | (self.setup_buf[7] << 8)
        if self.VULN_SETUPLEN:
            # CVE-2020-14364: stored before validation.
            self.setup_len = wlen
        else:
            if wlen > self.DATA_BUF_SIZE:
                self.setup_state = self.ST_IDLE    # STALL
                return 0
            self.setup_len = wlen
        self.setup_index = 0
        self.lba = self.setup_buf[2] | (self.setup_buf[3] << 8)
        if request_type & 0x80:
            # Device-to-host: stage the response now, guest reads it.
            self.handle_control_in()
            if self.setup_len > 0:
                self.setup_state = self.ST_DATA
            else:
                self.setup_state = self.ST_ACK
        else:
            if self.setup_len > 0:
                self.setup_state = self.ST_DATA
            else:
                self.handle_control_out()
        return 0

    # -- the attached storage function -----------------------------------------------------

    def handle_control_in(self):
        req = self.cur_req
        if req == self.REQ_GET_STATUS:
            self.data_buf[0] = 1
            self.data_buf[1] = 0
        elif req == self.REQ_GET_DESCRIPTOR:
            self.fill_descriptor()
        elif req == self.REQ_BLOCK_READ:
            self.block_read()
        else:
            self.data_buf[0] = 0
        return 0

    def handle_control_out(self):
        req = self.cur_req
        if req == self.REQ_SET_ADDRESS:
            self.devaddr = self.lba & 0x7F
        elif req == self.REQ_SET_CONFIGURATION:
            self.config = self.lba & 0xFF
        elif req == self.REQ_BLOCK_WRITE:
            self.block_write()
        self.setup_state = self.ST_ACK
        return 0

    def fill_descriptor(self):
        self.data_buf[0] = 18       # bLength
        self.data_buf[1] = 1        # DEVICE
        self.data_buf[2] = 0
        self.data_buf[3] = 2        # USB 2.0
        self.data_buf[4] = 8        # mass storage-ish
        self.data_buf[5] = 6
        self.data_buf[6] = 0x50
        self.data_buf[7] = 64
        return 0

    def block_read(self):
        base = self.lba * self.SECTOR
        for i in range(self.SECTOR):
            byte = disk_read(base + i)  # noqa: F821
            self.data_buf[i] = byte
        return 0

    def block_write(self):
        base = self.lba * self.SECTOR
        count = self.setup_len
        for i in range(count):
            disk_write(base + i, self.data_buf[i])  # noqa: F821
        return 0

    def complete_control(self):
        """Status stage: transaction done, raise the completion IRQ."""
        self.setup_state = self.ST_IDLE
        self.usbsts = self.usbsts | 0x01
        self.irq(1)
        return 0

    def on_irq(self, level):
        self.irq_level = level
        set_irq(level)  # noqa: F821
        return 0


@register_device
class EHCI(Device):
    """The wrapped EHCI controller + USB storage function."""

    LOGIC = EHCILogic
    NAME = "ehci"
    CVES = (
        CveGate("CVE-2020-14364", "VULN_SETUPLEN", "5.1.1",
                "setup_len stored before validation; data stage runs "
                "data_buf out of bounds"),
    )

    def __init__(self, qemu_version: str = "99.0.0",
                 disk: DiskImage = None, memory: GuestMemory = None,
                 irq_line: IRQLine = None, **kwargs):
        self.disk = disk if disk is not None else DiskImage(8 << 20)
        self.memory = memory if memory is not None else GuestMemory()
        self.irq_line = (irq_line if irq_line is not None
                         else IRQLine("ehci"))
        super().__init__(qemu_version=qemu_version, **kwargs)

    def bind_externs(self) -> None:
        self.machine.bind_extern(
            "disk_read", lambda m, off: self.disk.read_byte(off), cost=30)
        self.machine.bind_extern(
            "disk_write", lambda m, off, v: self.disk.write_byte(off, v),
            cost=30)
        self.machine.bind_extern(
            "set_irq", lambda m, level: self.irq_line.set_level(level),
            cost=50)

    def reset(self) -> None:
        self.machine.set_funcptr("irq", "on_irq")
        self.state.write_field("usbsts", 0x1000)   # HCHalted at boot
        self.state.write_field("portsc", 0x1005)   # connected, enabled
