"""Nioh baseline: manually-specified device state machines (ACSAC'17).

Nioh hardens the hypervisor by filtering I/O requests against a finite
state machine *hand-derived from the device's written specification*.
Transitions not in the model are illegal.  Exactly as in the original,
everything here is manual: per-device states, events, transition tables,
and spec-knowledge side conditions (command parameter counts, ring-length
minima, CDB group validity) encoded by a human reading the datasheet.

This is the comparison point the paper uses: Nioh detects CVE-2016-1568
(the spurious completion interrupt is an illegal transition of the manual
model) where SEDSpec's learned specification cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devices.base import Device
from repro.interp.sinks import TraceSink


@dataclass
class Violation:
    state: str
    event: str
    detail: str = ""

    def __str__(self) -> str:
        return f"illegal {self.event!r} in state {self.state!r} {self.detail}"


class DeviceFSM:
    """A hand-written automaton: states + (state, event) -> state."""

    def __init__(self, name: str, initial: str,
                 transitions: Dict[Tuple[str, str], str],
                 selfloop_events: Tuple[str, ...] = ()):
        self.name = name
        self.state = initial
        self.initial = initial
        self.transitions = dict(transitions)
        self.selfloop_events = frozenset(selfloop_events)
        self.violations: List[Violation] = []

    def feed(self, event: str, detail: str = "") -> bool:
        """Advance on *event*; record (and refuse) illegal transitions."""
        if event in self.selfloop_events:
            return True
        nxt = self.transitions.get((self.state, event))
        if nxt is None:
            self.violations.append(Violation(self.state, event, detail))
            return False
        self.state = nxt
        return True

    def reset(self) -> None:
        self.state = self.initial


class NiohMonitor(TraceSink):
    """Base monitor: translates device activity into FSM events."""

    def __init__(self, device: Device):
        self.device = device
        self.fsm = self.build_fsm()
        device.machine.add_sink(self)

    def build_fsm(self) -> DeviceFSM:
        raise NotImplementedError

    @property
    def violations(self) -> List[Violation]:
        return self.fsm.violations

    @property
    def detected(self) -> bool:
        return bool(self.fsm.violations)


class FDCNiohMonitor(NiohMonitor):
    """Manual 82078 model: command cycle phases + interrupt discipline.

    Spec knowledge encoded: each command's parameter count; SENSE INT
    executes immediately; an interrupt may only be raised by a command
    completion or a controller reset — an interrupt in IDLE with no
    operation pending is illegal (this catches the CVE-2016-1568 UAF).
    """

    PARAM_COUNTS = {0x03: 2, 0x04: 1, 0x07: 1, 0x0F: 2, 0x06: 8,
                    0x05: 8, 0x0A: 1, 0x13: 3, 0x0E: 0, 0x10: 0}
    #: datasheet: these commands produce no result phase ...
    NO_RESULT = frozenset({0x03, 0x07, 0x0F, 0x13})
    #: ... and only these raise a completion interrupt
    IRQ_RAISING = frozenset({0x05, 0x06, 0x07, 0x0A, 0x0F})

    def __init__(self, device: Device):
        self._params_left = 0
        self._completing = False
        self._cur_cmd = 0
        super().__init__(device)

    def build_fsm(self) -> DeviceFSM:
        transitions = {
            ("IDLE", "cmd"): "PARAM",
            ("IDLE", "cmd_immediate"): "RESULT",
            ("IDLE", "reset"): "IDLE",
            ("IDLE", "reset_irq"): "IDLE",
            ("PARAM", "param"): "PARAM",
            ("PARAM", "exec"): "RESULT",
            ("PARAM", "exec_noresult"): "IDLE",
            ("PARAM", "reset"): "IDLE",
            ("RESULT", "result_read"): "RESULT",
            ("RESULT", "result_done"): "IDLE",
            ("RESULT", "reset"): "IDLE",
            ("RESULT", "completion_irq"): "RESULT",
            ("PARAM", "completion_irq"): "PARAM",
            ("IDLE", "completion_irq"): "IDLE",
        }
        return DeviceFSM("fdc-nioh", "IDLE", transitions,
                         selfloop_events=("dor", "dsr", "msr_read"))

    # -- event extraction ---------------------------------------------------

    def on_io_enter(self, key, args) -> None:
        state = self.device.state
        if key == "pmio:write:2":
            if args and not args[0] & 0x04:
                self.fsm.feed("reset")
            else:
                self._completing = True     # reset raises a legal IRQ
                self.fsm.feed("reset_irq")
            return
        if key == "pmio:write:5":
            phase = state.read_field("phase")
            if phase == 0:                  # command opcode byte
                cmd = (args[0] & 0x1F) if args else 0
                self._cur_cmd = cmd
                count = self.PARAM_COUNTS.get(cmd, 0)
                self._params_left = count
                if count == 0:
                    # Immediate commands (SENSE INT/DUMPREG/VERSION)
                    # raise no interrupt, only a result phase.
                    self.fsm.feed("cmd_immediate",
                                  detail=f"cmd={cmd:#x}")
                else:
                    self.fsm.feed("cmd", detail=f"cmd={cmd:#x}")
            else:
                # Parameter byte: spec says exactly N then execution.
                if self._params_left <= 0:
                    self.fsm.feed("param_overflow",
                                  detail="more parameters than the "
                                         "datasheet allows")
                    return
                self._params_left -= 1
                self.fsm.feed("param")
                if self._params_left == 0:
                    if self._cur_cmd in self.IRQ_RAISING:
                        self._completing = True
                    if self._cur_cmd in self.NO_RESULT:
                        self.fsm.feed("exec_noresult")
                    else:
                        self.fsm.feed("exec")
        elif key == "pmio:read:5":
            if self.fsm.state == "RESULT":
                state_len = state.read_field("data_len")
                pos = state.read_field("data_pos")
                self.fsm.feed("result_read")
                if pos + 1 >= state_len:
                    self.fsm.feed("result_done")

    def on_extern(self, caller, func, dest, args, result) -> None:
        if func == "set_irq" and args and args[0]:
            if self._completing:
                self._completing = False
                self.fsm.feed("completion_irq")
            else:
                # An interrupt with nothing pending: the UAF's signature.
                self.fsm.feed("spurious_irq",
                              detail="interrupt with no operation pending")


class SCSINiohMonitor(NiohMonitor):
    """Manual ESP/SCSI model: selection discipline + CDB validity.

    Spec knowledge: the command FIFO holds at most 16 bytes, DMA selects
    must not exceed it, and CDB group codes 3/4/6/7 are reserved."""

    def build_fsm(self) -> DeviceFSM:
        transitions = {
            ("IDLE", "select"): "COMMAND",
            ("COMMAND", "data"): "DATA",
            ("COMMAND", "status"): "STATUS",
            ("DATA", "data"): "DATA",
            ("DATA", "status"): "STATUS",
            ("STATUS", "msg_accepted"): "IDLE",
            ("IDLE", "reset"): "IDLE",
            ("COMMAND", "reset"): "IDLE",
            ("DATA", "reset"): "IDLE",
            ("STATUS", "reset"): "IDLE",
            ("STATUS", "status"): "STATUS",
        }
        return DeviceFSM("scsi-nioh", "IDLE", transitions,
                         selfloop_events=("fifo", "tc", "status_read"))

    def on_io_enter(self, key, args) -> None:
        state = self.device.state
        if key == "pmio:write:3" and args:
            cmd = args[0] & 0x7F
            if cmd == 0x02:
                self.fsm.feed("reset")
            elif cmd in (0x42, 0x43):
                if cmd == 0x43:
                    length = state.read_field("ti_size")
                    if length > 16:
                        self.fsm.feed(
                            "oversized_select",
                            detail=f"DMA select of {length} > TI_BUFSZ")
                        return
                else:
                    first = state.read_buf("fifo", 0)
                    if (first >> 5) not in (0, 1, 2, 5):
                        self.fsm.feed(
                            "reserved_group",
                            detail=f"CDB group {first >> 5} is reserved")
                        return
                self.fsm.feed("select")
                self.fsm.feed("data")
            elif cmd == 0x11:
                self.fsm.feed("status")
            elif cmd == 0x12:
                self.fsm.feed("msg_accepted")
        elif key in ("pmio:read:0", "pmio:write:1"):
            if self.fsm.state == "DATA":
                self.fsm.feed("data")


class PCNetNiohMonitor(NiohMonitor):
    """Manual PCnet model: datasheet says ring lengths are 1..65535."""

    def build_fsm(self) -> DeviceFSM:
        return DeviceFSM("pcnet-nioh", "RUN", {("RUN", "csr"): "RUN"},
                         selfloop_events=("rap", "frame", "read"))

    def on_io_enter(self, key, args) -> None:
        if key == "pmio:write:0" and args:
            rap = self.device.state.read_field("rap")
            if rap in (76, 78) and args[0] == 0:
                self.fsm.feed("zero_ring_length",
                              detail=f"CSR{rap} := 0 violates datasheet")
                return
            self.fsm.feed("csr")


MONITORS = {
    "fdc": FDCNiohMonitor,
    "scsi": SCSINiohMonitor,
    "pcnet": PCNetNiohMonitor,
}


def attach_nioh(device: Device) -> NiohMonitor:
    try:
        cls = MONITORS[device.NAME]
    except KeyError:
        raise KeyError(f"no manual Nioh model written for {device.NAME} "
                       f"(that is Nioh's scalability problem)") from None
    return cls(device)
