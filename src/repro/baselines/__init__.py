"""Baseline systems for comparison: Nioh (manual FSM), VMDec (Markov)."""

from repro.baselines.nioh import (
    MONITORS, DeviceFSM, FDCNiohMonitor, NiohMonitor, PCNetNiohMonitor,
    SCSINiohMonitor, Violation, attach_nioh,
)
from repro.baselines.vmdec import (
    IOSequenceRecorder, MarkovModel, Token, VMDecDetector, tokenize,
)

__all__ = [
    "MONITORS", "DeviceFSM", "FDCNiohMonitor", "NiohMonitor",
    "PCNetNiohMonitor", "SCSINiohMonitor", "Violation", "attach_nioh",
    "IOSequenceRecorder", "MarkovModel", "Token", "VMDecDetector",
    "tokenize",
]
