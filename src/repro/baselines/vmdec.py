"""VMDec baseline: Markov-model anomaly detection on I/O sequences.

VMDec (Chen et al., 2018) trains a first-order Markov model over the
guest's I/O event stream and flags sequences containing transitions whose
learned probability falls below a threshold.  It needs no device
internals — which is also its weakness: exploits whose I/O streams look
statistically ordinary (e.g. Venom's long run of data-port writes) slip
through, the imprecision the paper cites for model-based detection.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

Token = Tuple[str, int]     # (direction, port offset)
START: Token = ("start", -1)


def tokenize(io_key: str) -> Token:
    """``pmio:write:5`` -> ("write", 5)."""
    _, direction, offset = io_key.split(":")
    return (direction, int(offset))


@dataclass
class MarkovModel:
    """First-order transition model with add-one smoothing disabled —
    unseen transitions are genuinely zero-probability, as in VMDec."""

    counts: Dict[Token, Dict[Token, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int)))
    totals: Dict[Token, int] = field(
        default_factory=lambda: defaultdict(int))

    def train(self, sequence: Iterable[str]) -> None:
        prev = START
        for io_key in sequence:
            token = tokenize(io_key)
            self.counts[prev][token] += 1
            self.totals[prev] += 1
            prev = token

    def probability(self, prev: Token, token: Token) -> float:
        total = self.totals.get(prev, 0)
        if total == 0:
            return 0.0
        return self.counts[prev][token] / total

    def score(self, sequence: Iterable[str]) -> float:
        """Minimum transition probability along the sequence."""
        prev = START
        minimum = 1.0
        for io_key in sequence:
            token = tokenize(io_key)
            minimum = min(minimum, self.probability(prev, token))
            prev = token
        return minimum


@dataclass
class VMDecDetector:
    """Threshold detector over the Markov model."""

    model: MarkovModel = field(default_factory=MarkovModel)
    threshold: float = 1e-4

    def train_sequences(self, sequences: Iterable[List[str]]) -> None:
        for sequence in sequences:
            self.model.train(sequence)

    def is_anomalous(self, sequence: List[str]) -> bool:
        return self.model.score(sequence) < self.threshold

    def flagged_positions(self, sequence: List[str]) -> List[int]:
        """Indices of below-threshold transitions (for analysis)."""
        out: List[int] = []
        prev = START
        for i, io_key in enumerate(sequence):
            token = tokenize(io_key)
            if self.model.probability(prev, token) < self.threshold:
                out.append(i)
            prev = token
        return out


class IOSequenceRecorder:
    """Captures the I/O key stream of a VM for VMDec training/testing."""

    def __init__(self, vm):
        self.sequence: List[str] = []
        self._orig = vm._io

        def spy(device, key, args):
            self.sequence.append(key)
            return self._orig(device, key, args)

        vm._io = spy
