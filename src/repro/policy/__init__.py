"""repro.policy: declarative per-tenant resilience policy.

Lifts the fleet's hard-coded resilience knobs (degradation mode, retry
budget, rate quota, respawn budget, circuit breaker, graduated response
ladder) into validated, content-addressed, hot-reloadable data.
"""

from repro.policy.model import (
    DEFAULT_POLICY, POLICY_FORMAT, PolicySet, PolicyStore, TenantPolicy,
    canonical_json, load_policy_file, policy_digest,
)

__all__ = [
    "DEFAULT_POLICY", "POLICY_FORMAT", "PolicySet", "PolicyStore",
    "TenantPolicy", "canonical_json", "load_policy_file",
    "policy_digest",
]
