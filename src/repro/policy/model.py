"""Declarative per-tenant resilience policy (policy-as-data).

Every resilience knob the fleet used to hard-code — degradation mode,
retry budget, rate quota, instance-respawn budget, circuit-breaker
threshold/cooldown, and the graduated response ladder — lives in a
JSON-serializable :class:`TenantPolicy`, resolved per tenant against
fleet-level defaults by a :class:`PolicySet`.  Documents are validated
eagerly at load (a malformed policy never reaches a running fleet) and
are content-addressed: the digest of the canonical JSON names the exact
policy generation a batch ran under, the same way spec digests name
spec generations.

The graduated response ladder is keyed on a tenant's *consecutive*
infrastructure strikes (trace gaps, decode failures — never security
verdicts):

* ``throttle_after``   — strikes that open the circuit breaker (requests
  are shed until a half-open probe succeeds);
* ``restore_after``    — strikes that roll the instance back to its last
  healthy snapshot (0 disables);
* ``quarantine_after`` — strikes that fence the tenant off entirely
  (0 disables).  This rung is an **infrastructure fence**, deliberately
  distinct from security quarantine: it never counts against the
  no-collateral invariant I2.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional

from repro.checker.degrade import DegradationConfig, DegradationPolicy
from repro.errors import PolicyError

#: Envelope format for persisted policy-set artifacts.
POLICY_FORMAT = 1

_DEGRADATIONS = tuple(p.value for p in DegradationPolicy)


def canonical_json(obj) -> str:
    """Canonical encoding shared by digests and round-trip tests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def policy_digest(obj) -> str:
    """Content address of a policy document (canonical-JSON sha256)."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's resilience contract.  All fields JSON-scalar."""

    policy_id: str = "default"
    #: what an enforcement-machinery failure means for the affected round
    degradation: str = "fail-closed"
    max_retries: int = 2
    #: max ops served per dispatched batch; overflow is shed (0 = no cap)
    rate_quota: int = 0
    #: device-fault respawns before the tenant is fenced
    respawn_budget: int = 1
    #: ladder rung 1: consecutive infra strikes that open the circuit
    #: (0 disables the breaker entirely)
    throttle_after: int = 3
    #: ops shed while open before a half-open probe is let through
    circuit_cooldown: int = 4
    #: ladder rung 2: strikes that restore the last healthy snapshot
    restore_after: int = 0
    #: ladder rung 3: strikes that fence the tenant (infra, not security)
    quarantine_after: int = 0

    def __post_init__(self):
        if not self.policy_id or not isinstance(self.policy_id, str):
            raise PolicyError("policy_id must be a non-empty string")
        if self.degradation not in _DEGRADATIONS:
            raise PolicyError(
                f"unknown degradation {self.degradation!r}; "
                f"choose from {_DEGRADATIONS}")
        for name in ("max_retries", "rate_quota", "respawn_budget",
                     "throttle_after", "restore_after",
                     "quarantine_after"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise PolicyError(f"{name} must be a non-negative int, "
                                  f"got {value!r}")
        if not isinstance(self.circuit_cooldown, int) \
                or isinstance(self.circuit_cooldown, bool) \
                or self.circuit_cooldown < 1:
            raise PolicyError("circuit_cooldown must be an int >= 1")
        if self.restore_after and self.throttle_after \
                and self.restore_after < self.throttle_after:
            raise PolicyError(
                "ladder out of order: restore_after "
                f"({self.restore_after}) fires before throttle_after "
                f"({self.throttle_after})")
        if self.quarantine_after and self.quarantine_after < max(
                self.throttle_after, self.restore_after, 1):
            raise PolicyError(
                "ladder out of order: quarantine_after "
                f"({self.quarantine_after}) fires before an earlier rung")

    def degradation_config(self) -> DegradationConfig:
        return DegradationConfig(DegradationPolicy(self.degradation),
                                 max_retries=self.max_retries)

    def to_obj(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_obj(cls, obj) -> "TenantPolicy":
        if not isinstance(obj, dict):
            raise PolicyError(
                f"policy document must be an object, got {type(obj).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(obj) - known)
        if unknown:
            raise PolicyError(f"unknown policy key(s): {', '.join(unknown)}")
        return cls(**obj)


#: The fleet's historical hard-coded behavior, now spelled as data.
DEFAULT_POLICY = TenantPolicy()


@dataclass(frozen=True)
class PolicySet:
    """Fleet-level defaults plus per-tenant overrides."""

    default: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)

    def __post_init__(self):
        for tenant, policy in self.tenants.items():
            if not isinstance(tenant, str) or not tenant:
                raise PolicyError("tenant keys must be non-empty strings")
            if not isinstance(policy, TenantPolicy):
                raise PolicyError(
                    f"override for {tenant!r} is not a TenantPolicy")

    def resolve(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default)

    def with_override(self, tenant: str,
                      policy: TenantPolicy) -> "PolicySet":
        tenants = dict(self.tenants)
        tenants[tenant] = policy
        return replace(self, tenants=tenants)

    def to_obj(self) -> Dict[str, object]:
        return {
            "format": POLICY_FORMAT,
            "default": self.default.to_obj(),
            "tenants": {t: p.to_obj()
                        for t, p in sorted(self.tenants.items())},
        }

    @property
    def digest(self) -> str:
        return policy_digest(self.to_obj())

    @classmethod
    def from_obj(cls, obj) -> "PolicySet":
        if not isinstance(obj, dict):
            raise PolicyError(
                f"policy set must be an object, got {type(obj).__name__}")
        unknown = sorted(set(obj) - {"format", "default", "tenants"})
        if unknown:
            raise PolicyError(
                f"unknown policy-set key(s): {', '.join(unknown)}")
        if obj.get("format", POLICY_FORMAT) != POLICY_FORMAT:
            raise PolicyError(
                f"unsupported policy format {obj.get('format')!r}")
        default = TenantPolicy.from_obj(obj.get("default", {}))
        tenants_obj = obj.get("tenants", {})
        if not isinstance(tenants_obj, dict):
            raise PolicyError("tenants must be an object")
        tenants = {t: TenantPolicy.from_obj(p)
                   for t, p in tenants_obj.items()}
        return cls(default=default, tenants=tenants)


def load_policy_file(path: str) -> PolicySet:
    """Parse + validate a policy document; raises :class:`PolicyError`
    (never partially applies) on malformed input."""
    try:
        with open(path) as handle:
            obj = json.load(handle)
    except OSError as exc:
        raise PolicyError(f"cannot read policy file {path}: {exc}")
    except ValueError as exc:
        raise PolicyError(f"policy file {path} is not valid JSON: {exc}")
    return PolicySet.from_obj(obj)


class PolicyStore:
    """Content-addressed policy-set storage, mirroring the spec
    registry: memory-first, with a digest-verified disk artifact when a
    ``cache_dir`` is set so pool worker processes resolve the digest a
    batch was stamped with."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir
        self._memory: Dict[str, PolicySet] = {}

    def path(self, digest: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir,
                            f"policy-{digest[:16]}.policy.json")

    def put(self, policies: PolicySet) -> str:
        obj = policies.to_obj()
        digest = policy_digest(obj)
        self._memory[digest] = policies
        path = self.path(digest)
        if path is not None:
            from repro.fleet.registry import _atomic_write_json
            _atomic_write_json(path, {"format": POLICY_FORMAT,
                                      "policy_sha256": digest,
                                      "policy": obj})
        return digest

    def get(self, digest: str) -> PolicySet:
        policies = self._memory.get(digest)
        if policies is not None:
            return policies
        path = self.path(digest)
        if path is None or not os.path.exists(path):
            raise PolicyError(
                f"no stored policy set for digest {digest[:16]}")
        try:
            with open(path) as handle:
                envelope = json.load(handle)
            obj = envelope["policy"]
        except (OSError, ValueError, KeyError, TypeError):
            raise PolicyError(
                f"policy artifact for {digest[:16]} is unreadable")
        if (not isinstance(envelope, dict)
                or envelope.get("format") != POLICY_FORMAT
                or envelope.get("policy_sha256") != digest
                or policy_digest(obj) != digest):
            raise PolicyError(
                f"policy artifact for {digest[:16]} fails its "
                f"content-digest check")
        policies = PolicySet.from_obj(obj)
        self._memory[digest] = policies
        return policies
