"""Workloads: training profiles, interaction modes, fuzzing, bench tools."""

from repro.workloads.profiles import (
    BASE_PORTS, FILESYSTEM_LAYOUTS, PROFILES, DeviceProfile, profile,
    train_device_spec,
)
from repro.workloads.interaction import (
    CASES_PER_HOUR, OPS_PER_CASE, RARE_CASE_RATE, CaseResult,
    FalsePositiveTable, InteractionMode, InteractionReport,
    false_positive_experiment, run_interaction,
)
from repro.workloads.fuzz import (
    FUZZ_ITERATIONS, FuzzResult, fuzz_device, measure_effective_coverage,
    training_coverage,
)
from repro.workloads.benchtools import (
    CYCLES_PER_SECOND, DEFAULT_RECORD_SIZES, IozoneResult, IperfResult,
    Measurement, StorageOps, iozone, iperf, normalized, overhead_percent,
    ping,
)

__all__ = [
    "BASE_PORTS", "FILESYSTEM_LAYOUTS", "PROFILES", "DeviceProfile",
    "profile", "train_device_spec",
    "CASES_PER_HOUR", "OPS_PER_CASE", "RARE_CASE_RATE", "CaseResult",
    "FalsePositiveTable", "InteractionMode", "InteractionReport",
    "false_positive_experiment", "run_interaction",
    "FUZZ_ITERATIONS", "FuzzResult", "fuzz_device",
    "measure_effective_coverage", "training_coverage",
    "CYCLES_PER_SECOND", "DEFAULT_RECORD_SIZES", "IozoneResult",
    "IperfResult", "Measurement", "StorageOps", "iozone", "iperf",
    "normalized", "overhead_percent", "ping",
]
