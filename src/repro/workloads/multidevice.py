"""Multi-device guest workloads: one tenant, several guarded devices.

A composite device name (``"virtio-net+virtio-blk"``) describes a guest
that drives every named part on one shared :class:`GuestVM` — shared
physical memory, per-part register windows, per-part specs.  This module
synthesizes the :class:`~repro.workloads.profiles.DeviceProfile` for such
a guest: the parts' own op lists wrapped to route through a
:class:`MultiDriver`, plus genuinely cross-device interaction patterns —
DMA scatter-gather chains whose descriptors point into another device's
DMA landing zone, and IRQ-driven ping-pong where one device's completion
interrupt triggers guest I/O against the other.

It also provides the interleaved-PT-stream model: per-device packet
streams are address-slid into disjoint windows, merged the way a single
hardware trace buffer would see concurrent devices, and demultiplexed
back by address-range filtering (the per-device ``ADDR_FILTER`` ranges
real PT offers).  The round-trip is exact and tested.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devices.base import create_device
from repro.errors import WorkloadError
from repro.ipt.packets import Fup, Packet, Tip, TipPgd, TipPge, iter_rounds
from repro.vm.machine import GuestVM
from repro.workloads.profiles import (
    BASE_PORTS, DeviceProfile, PROFILES, split_device,
)

# ---------------------------------------------------------------------------
# Interleaved PT streams with per-device address windows
# ---------------------------------------------------------------------------

#: Each device's trace window spans a full 32-bit code space; slides are
#: window-index multiples, so raw program addresses (well below 2^32)
#: never straddle a boundary.
WINDOW_SPAN = 1 << 32


@dataclass(frozen=True)
class DeviceWindow:
    """The address-range filter assigned to one device's trace stream."""

    name: str
    slide: int

    def contains(self, ip: int) -> bool:
        return self.slide <= ip < self.slide + WINDOW_SPAN


def device_windows(parts: Sequence[str]) -> Tuple[DeviceWindow, ...]:
    """Assign each part a disjoint window, in part order."""
    return tuple(DeviceWindow(part, i * WINDOW_SPAN)
                 for i, part in enumerate(parts))


def _slide_packet(packet: Packet, slide: int) -> Packet:
    if isinstance(packet, (TipPge, TipPgd, Tip, Fup)):
        return replace(packet, ip=packet.ip + slide)
    return packet


def interleave_streams(streams: Dict[str, Sequence[Packet]],
                       windows: Sequence[DeviceWindow],
                       seed: int = 0) -> List[Packet]:
    """Merge per-device packet streams into one trace-buffer stream.

    Interleaving happens at I/O-round granularity — rounds are atomic in
    the trace because the interpreter runs them to completion — in a
    seeded shuffle of the round arrival order, with every address slid
    into its device's window.
    """
    by_name = {w.name: w for w in windows}
    tagged: List[Tuple[int, int, List[Packet]]] = []
    for name, packets in streams.items():
        window = by_name[name]
        for i, round_packets in enumerate(iter_rounds(packets)):
            tagged.append((i, window.slide,
                           [_slide_packet(p, window.slide)
                            for p in round_packets]))
    # Stable seeded shuffle of arrival order, then restore each device's
    # own round ordering (a device's rounds cannot overtake one another).
    rng = random.Random(seed)
    order = list(range(len(tagged)))
    rng.shuffle(order)
    order.sort(key=lambda k: (tagged[k][0],))
    merged: List[Packet] = []
    for k in order:
        merged.extend(tagged[k][2])
    return merged


def demux_stream(packets: Sequence[Packet],
                 windows: Sequence[DeviceWindow]
                 ) -> Dict[str, List[Packet]]:
    """Split a merged stream back into per-device streams by address
    range — the filtering a per-device ``ADDR_FILTER`` would do in
    hardware.  Address-less packets (TNT, PSB) belong to the round opened
    by the last in-window TIP.PGE."""
    out: Dict[str, List[Packet]] = {w.name: [] for w in windows}
    current: Optional[DeviceWindow] = None
    for packet in packets:
        if isinstance(packet, TipPge):
            current = next((w for w in windows if w.contains(packet.ip)),
                           None)
        if current is None:
            continue
        out[current.name].append(_slide_packet(packet, -current.slide))
        if isinstance(packet, TipPgd):
            current = None
    return out


# ---------------------------------------------------------------------------
# The composite driver and profile
# ---------------------------------------------------------------------------

class MultiDriver:
    """Holds one driver per part; ops address parts by device name."""

    def __init__(self, parts: Dict[str, object]):
        self.parts = parts

    def __getitem__(self, name: str):
        return self.parts[name]

    def __iter__(self):
        return iter(self.parts)


class CompositeProfile(DeviceProfile):
    """A DeviceProfile whose VM hosts every part on one guest."""

    def __init__(self, name: str, parts: Tuple[str, ...], **kwargs):
        super().__init__(name=name, **kwargs)
        self.parts = parts

    def make_vm(self, qemu_version: str = "99.0.0",
                backend: str = "compiled"):
        vm = GuestVM()
        primary = None
        for part in self.parts:
            prof = PROFILES[part]
            device = create_device(part, qemu_version=qemu_version,
                                   backend=backend)
            if prof.bus == "mmio":
                vm.attach_mmio_device(device, prof.base_port)
            else:
                vm.attach_device(device, prof.base_port)
            if primary is None:
                primary = device
        return vm, primary


def _wrap_part_op(part: str, fn):
    def op(vm, driver: MultiDriver, rng):
        fn(vm, driver.parts[part], rng)
    return op


# -- cross-device interaction ops -------------------------------------------

def _x_dma_scatter_gather(vm, driver: MultiDriver, rng) -> None:
    """DMA scatter-gather crossing devices: blk reads disk sectors into
    its READBACK landing zone, then net transmits a chain whose first
    descriptor points *directly at blk's readback buffer* — two devices
    walking one guest-physical region."""
    blk = driver.parts["virtio-blk"]
    net = driver.parts["virtio-net"]
    sector = rng.randrange(8, 64)
    payload = bytes((rng.randrange(256),)) * 512
    blk.write_blocks(sector, payload)
    fetched = blk.read_blocks(sector, 256)
    assert fetched == payload[:256]
    # The read landed at blk.READBACK; chain it into a net frame with a
    # second chunk from net's own staging area.
    tail = bytes((rng.randrange(256),)) * rng.choice((32, 64))
    vm.memory.write_block(net.DATA, tail)
    head = net.build_chain(net.TX_QUEUE, [
        (blk.READBACK, 256, False),
        (net.DATA, len(tail), False),
    ])
    net.post_head(net.TX_QUEUE, head)
    net.notify(1)


def _x_irq_pingpong(vm, driver: MultiDriver, rng) -> None:
    """IRQ-driven ping-pong: a received net frame's interrupt prompts the
    guest to journal the frame to blk; blk's completion interrupt prompts
    the guest to re-arm net rx credit."""
    net = driver.parts["virtio-net"]
    blk = driver.parts["virtio-blk"]
    net_dev = vm.devices["virtio-net"]
    blk_dev = vm.devices["virtio-blk"]
    for _ in range(rng.choice((1, 2))):
        frame = bytes((rng.randrange(256),)) * rng.choice((40, 96))
        raised = net_dev.irq_line.raise_count
        net.deliver_frame(frame)
        assert net_dev.irq_line.raise_count > raised
        net.read_isr()                      # guest answers the interrupt
        echoed = net.read_frame(len(frame))
        raised = blk_dev.irq_line.raise_count
        blk.write_blocks(rng.randrange(64, 128), echoed)
        assert blk_dev.irq_line.raise_count > raised
        blk.read_isr()
        net.post_rx_buffers()               # re-arm credit: ping again


def _x_interleaved(parts: Tuple[str, ...]):
    """An op that interleaves one weighted common op from each of two
    seeded-chosen parts — concurrent guests as one tenant produces them."""
    def op(vm, driver: MultiDriver, rng):
        chosen = [rng.choice(parts) for _ in range(2)]
        for part in chosen:
            prof = PROFILES[part]
            indices = range(len(prof.common_ops))
            index = rng.choices(indices, weights=prof.op_weights)[0]
            prof.common_ops[index](vm, driver.parts[part], rng)
    return op


def _composite_prepare(parts: Tuple[str, ...]):
    def prepare(vm, driver: MultiDriver):
        for part in parts:
            PROFILES[part].prepare(vm, driver.parts[part])
    return prepare


def _composite_training(parts: Tuple[str, ...]):
    def training(vm, device, rng):
        for part in parts:
            PROFILES[part].training(vm, vm.devices[part], rng)
    return training


def _composite_make_driver(parts: Tuple[str, ...]):
    def make_driver(vm):
        return MultiDriver({part: PROFILES[part].make_driver(vm)
                            for part in parts})
    return make_driver


_VIRTIO_PAIR = ("virtio-net", "virtio-blk")

_CACHE: Dict[str, CompositeProfile] = {}


def composite_profile(name: str) -> CompositeProfile:
    """Synthesize (and cache) the profile for a composite device name."""
    if name in _CACHE:
        return _CACHE[name]
    parts = split_device(name)
    if len(parts) < 2:
        raise WorkloadError(f"composite name needs 2+ parts: {name!r}")
    unknown = [p for p in parts if p not in PROFILES]
    if unknown:
        raise WorkloadError(f"unknown composite parts: {unknown}")
    common: List = []
    weights: List[float] = []
    for part in parts:
        prof = PROFILES[part]
        for fn, weight in zip(prof.common_ops,
                              prof.op_weights
                              or [1.0] * len(prof.common_ops)):
            common.append(_wrap_part_op(part, fn))
            weights.append(weight / len(parts))
    common.append(_x_interleaved(parts))
    weights.append(0.5)
    if set(_VIRTIO_PAIR) <= set(parts):
        common.append(_x_dma_scatter_gather)
        common.append(_x_irq_pingpong)
        weights.extend((0.25, 0.25))
    rare = [_wrap_part_op(part, fn)
            for part in parts for fn in PROFILES[part].rare_ops]
    profile = CompositeProfile(
        name=name, parts=parts,
        base_port=PROFILES[parts[0]].base_port,
        kind="multi",
        make_driver=_composite_make_driver(parts),
        training=_composite_training(parts),
        prepare=_composite_prepare(parts),
        common_ops=common, rare_ops=rare, op_weights=weights,
        bus=PROFILES[parts[0]].bus)
    _CACHE[name] = profile
    return profile
