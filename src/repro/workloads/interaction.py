"""Long-term multi-dimensional interaction testing (Section VII-B.1).

The paper drives each device for 10/20/30 hours in three interaction
modes (sequential, random, random-with-delay) with test cases of varying
volume, then counts cases SEDSpec flags that were actually legitimate —
the false positives of Table II and the FPR column of Table III.

Scaling: the interpreted substrate runs the same protocol traffic at
reduced volume; one *simulated hour* is :data:`CASES_PER_HOUR` cases and
case sizes are scaled down accordingly (recorded in EXPERIMENTS.md).
False positives arise the way the paper says theirs did: exceedingly
rare — but legitimate — device commands that the training corpus never
exercised, injected with probability :data:`RARE_CASE_RATE` per case.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker import Mode
from repro.core import deploy
from repro.spec import ExecutionSpec
from repro.vm.machine import GuestVM, SEDSpecHalt
from repro.workloads.profiles import DeviceProfile, PROFILES

#: One simulated hour of guest interaction (downscaled; see module doc).
CASES_PER_HOUR = 12
#: Guest operations per test case (the paper: thousands to tens of
#: thousands of I/O sequences; one op here is tens to hundreds of rounds).
OPS_PER_CASE = (2, 7)
#: Probability that a legitimate-but-rare command appears in a case.
RARE_CASE_RATE = 0.004


class InteractionMode(enum.Enum):
    SEQUENTIAL = "sequential"
    RANDOM = "random"
    RANDOM_DELAY = "random_delay"


@dataclass
class CaseResult:
    ops: int
    rounds: int
    flagged: bool            # SEDSpec warned/halted during the case
    contained_rare: bool     # the case included a rare legit command

    @property
    def false_positive(self) -> bool:
        # Everything in this experiment is legitimate traffic, so any
        # flag is by definition a false positive.
        return self.flagged


@dataclass
class InteractionReport:
    device: str
    mode: InteractionMode
    hours: int
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return len(self.cases)

    @property
    def false_positives(self) -> int:
        return sum(1 for c in self.cases if c.false_positive)

    @property
    def fpr(self) -> float:
        if not self.cases:
            return 0.0
        return self.false_positives / self.total_cases

    @property
    def total_rounds(self) -> int:
        return sum(c.rounds for c in self.cases)


def run_interaction(spec: ExecutionSpec, device_name: str,
                    mode: InteractionMode, hours: int,
                    seed: int = 11,
                    cases_per_hour: int = CASES_PER_HOUR,
                    rare_case_rate: float = RARE_CASE_RATE,
                    qemu_version: str = "99.0.0") -> InteractionReport:
    """Drive one device+mode for *hours* simulated hours under SEDSpec
    (enhancement mode: warnings recorded, execution continues)."""
    prof = PROFILES[device_name]
    rng = random.Random((seed, device_name, mode.value, hours).__hash__())
    report = InteractionReport(device_name, mode, hours)

    vm, device = prof.make_vm(qemu_version)
    attachment = deploy(vm, device, spec, mode=Mode.ENHANCEMENT)
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)

    for _ in range(hours * cases_per_hour):
        report.cases.append(
            _run_case(vm, device, driver, prof, attachment, mode, rng,
                      rare_case_rate))
    return report


def _run_case(vm: GuestVM, device, driver, prof: DeviceProfile,
              attachment, mode: InteractionMode, rng: random.Random,
              rare_case_rate: float) -> CaseResult:
    ops = rng.randint(*OPS_PER_CASE)
    warn_before = len(attachment.warnings)
    rounds_before = vm.stats.io_rounds
    contained_rare = rng.random() < rare_case_rate
    rare_at = rng.randrange(ops) if contained_rare else -1

    plan = _plan_ops(prof, mode, ops, rng)
    simulated_delay = 0
    for i, op in enumerate(plan):
        if i == rare_at:
            rng.choice(prof.rare_ops)(vm, driver, rng)
        if mode is InteractionMode.RANDOM_DELAY:
            simulated_delay += rng.randrange(1, 2000)
        try:
            op(vm, driver, rng)
        except SEDSpecHalt:      # enhancement mode never halts on
            break                # conditional warnings; defensive only
    vm.stats.vmexit_cycles += simulated_delay    # idle time accounting
    return CaseResult(
        ops=ops, rounds=vm.stats.io_rounds - rounds_before,
        flagged=len(attachment.warnings) > warn_before,
        contained_rare=contained_rare)


def _plan_ops(prof: DeviceProfile, mode: InteractionMode, count: int,
              rng: random.Random) -> List:
    if mode is InteractionMode.SEQUENTIAL:
        # A fixed read-after-write cadence, cycling the op list in order.
        return [prof.common_ops[i % len(prof.common_ops)]
                for i in range(count)]
    return rng.choices(prof.common_ops, weights=prof.op_weights, k=count)


@dataclass
class FalsePositiveTable:
    """Table II: false positives per device over 10/20/30 hours, and the
    aggregated FPR for Table III."""

    per_device: Dict[str, Dict[int, int]] = field(default_factory=dict)
    fpr: Dict[str, float] = field(default_factory=dict)
    total_cases: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, int, int, int, str]]:
        out = []
        for device in sorted(self.per_device):
            counts = self.per_device[device]
            out.append((device, counts.get(10, 0), counts.get(20, 0),
                        counts.get(30, 0),
                        f"{100 * self.fpr.get(device, 0):.2f}%"))
        return out


def false_positive_experiment(
        specs: Dict[str, ExecutionSpec],
        hours_list: Tuple[int, ...] = (10, 20, 30),
        modes: Tuple[InteractionMode, ...] = tuple(InteractionMode),
        seed: int = 11,
        cases_per_hour: int = CASES_PER_HOUR,
        rare_case_rate: float = RARE_CASE_RATE) -> FalsePositiveTable:
    """Reproduce Table II + the FPR column of Table III.

    Each mode runs once to the longest horizon; false-positive counts are
    read off cumulatively at the intermediate checkpoints (10/20/30 h),
    and the FPR aggregates over every case of every mode.
    """
    table = FalsePositiveTable()
    horizon = max(hours_list)
    for device_name, spec in specs.items():
        table.per_device[device_name] = {h: 0 for h in hours_list}
        total_fp = 0
        total_cases = 0
        for mode in modes:
            report = run_interaction(
                spec, device_name, mode, horizon, seed=seed,
                cases_per_hour=cases_per_hour,
                rare_case_rate=rare_case_rate)
            total_fp += report.false_positives
            total_cases += report.total_cases
            for hours in hours_list:
                upto = hours * cases_per_hour
                table.per_device[device_name][hours] += sum(
                    1 for c in report.cases[:upto] if c.false_positive)
        table.fpr[device_name] = (total_fp / total_cases
                                  if total_cases else 0.0)
        table.total_cases[device_name] = total_cases
    return table
