"""Coverage-oriented device fuzzing (the effective-coverage metric).

The paper approximates "all paths representing legitimate behaviours" by
fuzzing each device for an hour (coverage converges quickly for common
control flow) and then reports the training corpus's edge coverage of
that set — Table III's *Effective Coverage* column.

The fuzzer issues randomized-but-plausible guest operations (common ops
with randomized arguments, plus raw register pokes); rounds that crash
the device are excluded — a crash is not legitimate behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple

from repro.cfg import CoverageReport, effective_coverage
from repro.errors import DeviceFault, GuestError, ReproError
from repro.interp import CoverageSink
from repro.workloads.profiles import DeviceProfile, PROFILES

#: Default iteration budget standing in for the paper's one fuzzing hour.
FUZZ_ITERATIONS = 500


@dataclass
class FuzzResult:
    device: str
    iterations: int
    crashes: int
    legitimate_edges: Set[Tuple[int, int]]
    legitimate_blocks: Set[int]


def fuzz_device(device_name: str, iterations: int = FUZZ_ITERATIONS,
                seed: int = 23,
                qemu_version: str = "99.0.0") -> FuzzResult:
    """Collect the legitimate-behaviour edge set for one device."""
    prof = PROFILES[device_name]
    rng = random.Random((seed, device_name).__hash__())
    vm, device = prof.make_vm(qemu_version)
    driver = prof.make_driver(vm)
    cov = device.machine.add_sink(CoverageSink())
    crashes = 0
    legit_edges: Set[Tuple[int, int]] = set()
    legit_blocks: Set[int] = set()
    try:
        prof.prepare(vm, driver)
    except ReproError:
        pass
    for _ in range(iterations):
        before_edges = set(cov.edges)
        before_blocks = set(cov.blocks)
        try:
            _one_fuzz_step(vm, device, driver, prof, rng)
        except (DeviceFault, GuestError, ReproError):
            crashes += 1
            # Crash rounds are not legitimate behaviour: roll back their
            # coverage contribution and reboot the device.
            cov.edges = before_edges
            cov.blocks = before_blocks
            vm, device = prof.make_vm(qemu_version)
            driver = prof.make_driver(vm)
            cov = device.machine.add_sink(CoverageSink())
            cov.edges |= before_edges
            cov.blocks |= before_blocks
            try:
                prof.prepare(vm, driver)
            except ReproError:
                pass
            continue
        legit_edges |= cov.edges
        legit_blocks |= cov.blocks
    return FuzzResult(device_name, iterations, crashes, legit_edges,
                      legit_blocks)


def _one_fuzz_step(vm, device, driver, prof: DeviceProfile,
                   rng: random.Random) -> None:
    roll = rng.random()
    if roll < 0.55:
        rng.choice(prof.common_ops)(vm, driver, rng)
    elif roll < 0.70 and prof.rare_ops:
        rng.choice(prof.rare_ops)(vm, driver, rng)
    elif roll < 0.85:
        # Raw register poke on a known offset with a random byte.
        prof.poke(vm, rng.randrange(0, 9), rng.randrange(256))
    else:
        prof.peek(vm, rng.randrange(0, 9))
    # Occasional burst of the same op, like real driver retry behaviour.
    if rng.random() < 0.1:
        rng.choice(prof.common_ops)(vm, driver, rng)


def training_coverage(device_name: str, seed: int = 7,
                      repeats: int = 2,
                      qemu_version: str = "99.0.0") -> Set[Tuple[int, int]]:
    """Edge set the training workload reaches (the spec's coverage)."""
    prof = PROFILES[device_name]
    vm, device = prof.make_vm(qemu_version)
    cov = device.machine.add_sink(CoverageSink())
    rng = random.Random(seed)
    for _ in range(repeats):
        prof.training(vm, device, rng)
    return set(cov.edges)


def measure_effective_coverage(device_name: str,
                               iterations: int = FUZZ_ITERATIONS,
                               seed: int = 23) -> CoverageReport:
    """Table III's effective coverage for one device."""
    legit = fuzz_device(device_name, iterations=iterations, seed=seed)
    trained = training_coverage(device_name)
    return effective_coverage(trained, legit.legitimate_edges)
