"""iozone / iperf / ping analogues over the cycle model (Section VII-C).

The paper measures wall-clock throughput/latency with iozone (storage),
iperf (network bandwidth), and ping (network latency), then normalizes
SEDSpec-enabled against baseline.  Our substrate is deterministic: every
guest I/O accrues cycles (vmexit + device work + checker work), so the
tools below report cycle-derived figures and the *normalized* results —
the quantity the paper actually plots — are exact ratios.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.vm.machine import GuestVM, IOStats

#: Nominal simulated clock, used only to print human-friendly units.
CYCLES_PER_SECOND = 1_000_000_000

#: iperf/ping measure end-to-end through the guest network stack; this
#: per-frame cost models the protocol processing outside the device path
#: (identical for baseline and SEDSpec runs, as on real hardware).
NET_STACK_CYCLES_PER_FRAME = 2_500


@dataclass
class Measurement:
    """One benchmark point."""

    label: str
    payload_bytes: int
    cycles: int
    operations: int

    @property
    def seconds(self) -> float:
        return self.cycles / CYCLES_PER_SECOND

    @property
    def throughput_bytes_per_sec(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.payload_bytes / self.seconds

    @property
    def latency_sec_per_op(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.seconds / self.operations


def _measured(vm: GuestVM, label: str, payload: int,
              operations: int, before: IOStats) -> Measurement:
    delta = vm.stats.delta(before)
    return Measurement(label, payload, delta.total_cycles, operations)


# -- iozone analogue ---------------------------------------------------------

#: Record sizes swept by the storage benchmark (bytes).  The FDC's media
#: is only 1.44/2.88 MB, so (as in the paper) it is measured only at
#: record sizes below its limit — here that's all of them, but the sweep
#: is capped to the device's capacity anyway.
DEFAULT_RECORD_SIZES = (512, 1024, 2048, 4096, 8192)


@dataclass
class IozoneResult:
    device: str
    #: record size -> Measurement, for each of read and write
    write: Dict[int, Measurement] = field(default_factory=dict)
    read: Dict[int, Measurement] = field(default_factory=dict)


class StorageOps:
    """Uniform sector-I/O facade over the four storage drivers."""

    def __init__(self, device_name: str, vm: GuestVM, driver):
        self.device_name = device_name
        self.vm = vm
        self.driver = driver

    def write(self, lba: int, data: bytes) -> None:
        if self.device_name == "fdc":
            for i in range(0, len(data), 512):
                self.driver.write_lba(lba + i // 512, data[i:i + 512])
        elif self.device_name == "ehci":
            for i in range(0, len(data), 512):
                self.driver.write_block(lba + i // 512, data[i:i + 512])
        elif self.device_name == "sdhci":
            self.driver.write_blocks(lba, data)
        elif self.device_name == "scsi":
            self.driver.write10(lba, data)
        else:
            raise ValueError(self.device_name)

    def read(self, lba: int, length: int) -> bytes:
        blocks = length // 512
        if self.device_name == "fdc":
            return b"".join(self.driver.read_lba(lba + i)
                            for i in range(blocks))
        if self.device_name == "ehci":
            return b"".join(self.driver.read_block(lba + i)
                            for i in range(blocks))
        if self.device_name == "sdhci":
            return self.driver.read_blocks(lba, blocks)
        if self.device_name == "scsi":
            return self.driver.read10(lba, blocks)
        raise ValueError(self.device_name)


def iozone(device_name: str, vm: GuestVM, driver,
           record_sizes: Tuple[int, ...] = DEFAULT_RECORD_SIZES,
           records_per_size: int = 2,
           seed: int = 5) -> IozoneResult:
    """Sweep record sizes, measuring write and read phases separately."""
    ops = StorageOps(device_name, vm, driver)
    rng = random.Random(seed)
    result = IozoneResult(device_name)
    for size in record_sizes:
        payload = bytes(rng.randrange(256) for _ in range(64)) \
            * (size // 64)
        lba = 8
        before = vm.stats.snapshot()
        for r in range(records_per_size):
            ops.write(lba + r * (size // 512), payload)
        result.write[size] = _measured(
            vm, f"write/{size}", size * records_per_size,
            records_per_size, before)
        before = vm.stats.snapshot()
        for r in range(records_per_size):
            ops.read(lba + r * (size // 512), size)
        result.read[size] = _measured(
            vm, f"read/{size}", size * records_per_size,
            records_per_size, before)
    return result


# -- iperf analogue -------------------------------------------------------------

@dataclass
class IperfResult:
    """Bandwidth per (protocol, direction) — Figure 5's four bars."""

    bandwidth: Dict[Tuple[str, str], Measurement] = field(
        default_factory=dict)


def iperf(vm: GuestVM, driver, frames: int = 24,
          frame_size: int = 250, seed: int = 9) -> IperfResult:
    """TCP/UDP x upstream/downstream transfer through the PCNet model.

    TCP adds per-frame acknowledgement traffic in the reverse direction
    (that is what differentiates its cost profile from UDP here).
    """
    rng = random.Random(seed)
    result = IperfResult()
    for proto in ("tcp", "udp"):
        for direction in ("up", "down"):
            before = vm.stats.snapshot()
            moved = 0
            for _ in range(frames):
                payload = bytes(rng.randrange(256)
                                for _ in range(16)) * (frame_size // 16)
                if direction == "up":
                    driver.send_frame(payload)
                else:
                    driver.deliver_frame(payload)
                    driver.read_frame(len(payload))
                moved += len(payload)
                vm.stats.vmexit_cycles += NET_STACK_CYCLES_PER_FRAME
                if proto == "tcp":
                    # ACK segment in the reverse direction.
                    if direction == "up":
                        driver.deliver_frame(b"\x00" * 60)
                        driver.read_frame(60)
                    else:
                        driver.send_frame(b"\x00" * 60)
            result.bandwidth[(proto, direction)] = _measured(
                vm, f"{proto}/{direction}", moved, frames, before)
    return result


# -- ping analogue ----------------------------------------------------------------

def ping(vm: GuestVM, driver, count: int = 20,
         payload_size: int = 64) -> Measurement:
    """ICMP-echo-style round trips: send a frame, receive the echo."""
    before = vm.stats.snapshot()
    for seq in range(count):
        payload = bytes([seq & 0xFF]) * payload_size
        driver.send_frame(payload)
        driver.deliver_frame(payload)
        driver.read_frame(payload_size)
        vm.stats.vmexit_cycles += NET_STACK_CYCLES_PER_FRAME
    return _measured(vm, "ping", payload_size * count * 2, count, before)


# -- open-loop arrival processes ---------------------------------------------

#: Arrival patterns the admission gateway understands.
ARRIVAL_PATTERNS = ("poisson", "bursty", "diurnal")


def poisson_arrivals(rate_per_sec: float, horizon_cycles: int,
                     rng: random.Random) -> List[int]:
    """Homogeneous Poisson process on the simulated clock: exponential
    inter-arrival times at *rate_per_sec*, cycles in ``[0, horizon)``."""
    if rate_per_sec <= 0 or horizon_cycles <= 0:
        return []
    mean_gap = CYCLES_PER_SECOND / rate_per_sec
    out: List[int] = []
    t = rng.expovariate(1.0) * mean_gap
    while t < horizon_cycles:
        out.append(int(t))
        t += rng.expovariate(1.0) * mean_gap
    return out


def bursty_arrivals(rate_per_sec: float, horizon_cycles: int,
                    rng: random.Random, burst_factor: float = 8.0,
                    on_fraction: float = 0.2,
                    period_s: float = 0.005,
                    idle_factor: float = 0.1) -> List[int]:
    """On/off modulated Poisson (an MMPP with two states): exponential
    ON phases (mean ``period_s * on_fraction``) at ``rate * burst_factor``
    alternating with OFF phases (mean ``period_s * (1 - on_fraction)``)
    at ``rate * idle_factor``.  Mean rate is above *rate_per_sec* by
    design — bursts are the point — but the same order of magnitude."""
    if rate_per_sec <= 0 or horizon_cycles <= 0:
        return []
    out: List[int] = []
    t = 0.0
    on = bool(rng.getrandbits(1))
    while t < horizon_cycles:
        mean_len = period_s * (on_fraction if on else 1.0 - on_fraction)
        phase_end = t + rng.expovariate(1.0) * mean_len \
            * CYCLES_PER_SECOND
        rate = rate_per_sec * (burst_factor if on else idle_factor)
        if rate > 0:
            mean_gap = CYCLES_PER_SECOND / rate
            arrival = t + rng.expovariate(1.0) * mean_gap
            while arrival < min(phase_end, horizon_cycles):
                out.append(int(arrival))
                arrival += rng.expovariate(1.0) * mean_gap
        t = phase_end
        on = not on
    return out


def diurnal_arrivals(rate_per_sec: float, horizon_cycles: int,
                     rng: random.Random, period_s: float = 0.01,
                     amplitude: float = 0.8) -> List[int]:
    """Sinusoidally modulated Poisson process via thinning: candidates
    are drawn at the peak rate ``rate * (1 + amplitude)`` and accepted
    with probability proportional to ``1 + amplitude * sin(2*pi*t/T)``
    — a compressed day/night load cycle on the simulated clock."""
    if rate_per_sec <= 0 or horizon_cycles <= 0:
        return []
    peak = rate_per_sec * (1.0 + amplitude)
    out: List[int] = []
    for t in poisson_arrivals(peak, horizon_cycles, rng):
        phase = 2.0 * math.pi * t / (period_s * CYCLES_PER_SECOND)
        accept = (1.0 + amplitude * math.sin(phase)) / (1.0 + amplitude)
        if rng.random() < accept:
            out.append(t)
    return out


def arrivals(pattern: str, rate_per_sec: float, horizon_cycles: int,
             rng: random.Random, **kwargs) -> List[int]:
    """Dispatch on *pattern*; returns sorted arrival cycles."""
    if pattern == "poisson":
        return poisson_arrivals(rate_per_sec, horizon_cycles, rng)
    if pattern == "bursty":
        return bursty_arrivals(rate_per_sec, horizon_cycles, rng,
                               **kwargs)
    if pattern == "diurnal":
        return diurnal_arrivals(rate_per_sec, horizon_cycles, rng,
                                **kwargs)
    raise ValueError(f"unknown arrival pattern {pattern!r} "
                     f"(want one of {ARRIVAL_PATTERNS})")


# -- normalization ------------------------------------------------------------------

def normalized(baseline: Measurement, treated: Measurement,
               metric: str) -> float:
    """Paper-style normalization: baseline == 1.0.

    * throughput/bandwidth: treated/baseline (values < 1 mean slowdown)
    * latency: treated/baseline (values > 1 mean slowdown)
    """
    if metric in ("throughput", "bandwidth"):
        base = baseline.throughput_bytes_per_sec
        return (treated.throughput_bytes_per_sec / base) if base else 0.0
    if metric == "latency":
        base = baseline.latency_sec_per_op
        return (treated.latency_sec_per_op / base) if base else 0.0
    raise ValueError(metric)


def overhead_percent(baseline: Measurement, treated: Measurement,
                     metric: str) -> float:
    """Overhead as the paper quotes it (loss for throughput, increase
    for latency), in percent."""
    ratio = normalized(baseline, treated, metric)
    if metric in ("throughput", "bandwidth"):
        return 100.0 * (1.0 - ratio)
    return 100.0 * (ratio - 1.0)
