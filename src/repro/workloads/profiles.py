"""Per-device workload profiles.

A :class:`DeviceProfile` bundles everything the experiments need to know
about one device: how to build and attach it, how to drive *training*
traffic (Section IV-C: varied configurations and parameters), which guest
operations are *common* (exercised in training), and which are *rare* —
legitimate commands that training never saw, the paper's stated source of
false positives.

Scaling note: the paper trains with web/QTest-derived corpora and runs
30-hour workloads; our interpreted substrate runs the same protocol
traffic at reduced volume (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.devices.base import Device, create_device
from repro.vm.machine import GuestVM
from repro.vm.drivers.ehci import EHCIDriver
from repro.vm.drivers.fdc import FDCDriver
from repro.vm.drivers.pcnet import PCNetDriver
from repro.vm.drivers.scsi import SCSIDriver
from repro.vm.drivers.sdhci import SDHCIDriver

BASE_PORTS = {"fdc": 0x3F0, "pcnet": 0x300, "ehci": 0x400,
              "sdhci": 0x500, "scsi": 0x600}

#: Synthetic stand-ins for the paper's storage configurations: each
#: "filesystem" writes its metadata at characteristic offsets/patterns.
FILESYSTEM_LAYOUTS = {
    "FAT32": {"superblock_lba": 0, "meta_stride": 2, "fill": 0xF6},
    "NTFS": {"superblock_lba": 0, "meta_stride": 4, "fill": 0x00},
    "EXT4": {"superblock_lba": 2, "meta_stride": 8, "fill": 0xEF},
}

Op = Callable[[GuestVM, object, random.Random], None]


@dataclass
class DeviceProfile:
    name: str
    base_port: int
    kind: str                      # "storage" | "network"
    make_driver: Callable[[GuestVM], object]
    training: Callable[[GuestVM, Device, random.Random], None]
    prepare: Callable[[GuestVM, object], None]
    common_ops: List[Op]
    rare_ops: List[Op]
    #: sampling weights aligned with common_ops (block I/O is weighted
    #: down so interaction cases mix light register traffic with data
    #: transfers the way real guests do)
    op_weights: Optional[List[float]] = None
    #: register bus: "pmio" (port I/O) or "mmio" (memory-mapped)
    bus: str = "pmio"

    def make_vm(self, qemu_version: str = "99.0.0",
                backend: str = "compiled") -> Tuple[GuestVM, Device]:
        vm = GuestVM()
        device = create_device(self.name, qemu_version=qemu_version,
                               backend=backend)
        if self.bus == "mmio":
            vm.attach_mmio_device(device, self.base_port)
        else:
            vm.attach_device(device, self.base_port)
        return vm, device

    def poke(self, vm: GuestVM, offset: int, value: int) -> None:
        """Raw register write on whichever bus the device uses."""
        if self.bus == "mmio":
            vm.mmio_write(self.base_port + offset, value)
        else:
            vm.outb(self.base_port + offset, value)

    def peek(self, vm: GuestVM, offset: int) -> int:
        if self.bus == "mmio":
            return vm.mmio_read(self.base_port + offset)
        return vm.inb(self.base_port + offset)


# ---------------------------------------------------------------------------
# FDC
# ---------------------------------------------------------------------------

def _fdc_prepare(vm: GuestVM, driver: FDCDriver) -> None:
    driver.controller_reset()
    driver.specify()

def _fdc_training(vm: GuestVM, device: Device, rng: random.Random) -> None:
    driver = FDCDriver(vm, BASE_PORTS["fdc"])
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.controller_reset()
        driver.specify()
        driver.version()
        driver.recalibrate()
        # "Format" the filesystem area, then metadata and file I/O.
        driver.format_track(1, sectors=2, filler=layout["fill"])
        for k in range(3):
            lba = layout["superblock_lba"] + k * layout["meta_stride"]
            driver.write_lba(lba, bytes([layout["fill"]]) * 512)
        for _ in range(6):
            lba = rng.randrange(0, 60)
            payload = bytes(rng.randrange(256) for _ in range(8)) * 64
            driver.write_lba(lba, payload)
            assert driver.read_lba(lba) == payload
        driver.seek(rng.randrange(0, 40))
        driver.read_id(0)
        driver.read_id(1)
        driver.msr()
        # Benign corner interactions real guests produce: polling the
        # DOR, probing the data port outside a command cycle (the
        # controller answers with an error status), sensing the drive.
        driver._in(2)
        driver._in(5)
        driver._command(0x04, [0])
        driver._results(1)
        driver._command(0x08, [])
        driver._out(5, 0x00)          # write during result phase
        driver._results(2)
        driver._out(4, 0x80)          # DSR software reset
        driver.sense_interrupt()
        driver._command(0x1F, [])     # unknown opcode: error result
        driver._results(1)
        driver.dumpreg()

def _fdc_write(vm, driver, rng):
    driver.write_lba(rng.randrange(0, 60),
                     bytes([rng.randrange(256)]) * 512)

def _fdc_read(vm, driver, rng):
    driver.read_lba(rng.randrange(0, 60))

def _fdc_seek(vm, driver, rng):
    driver.seek(rng.randrange(0, 79))

def _fdc_status(vm, driver, rng):
    driver.msr()

def _fdc_readid(vm, driver, rng):
    driver.read_id(rng.randrange(0, 2))

def _fdc_rare_configure(vm, driver, rng):
    driver.configure()

def _fdc_rare_dumpreg(vm, driver, rng):
    driver.dumpreg()


# ---------------------------------------------------------------------------
# PCNet
# ---------------------------------------------------------------------------

def _pcnet_prepare(vm: GuestVM, driver: PCNetDriver) -> None:
    driver.init_rings()

def _pcnet_training(vm: GuestVM, device: Device,
                    rng: random.Random) -> None:
    driver = PCNetDriver(vm, BASE_PORTS["pcnet"])
    # Vary "IP/MAC/gateway" payload headers, frame sizes incl. jumbo-ish,
    # and loopback mode — the paper's network training dimensions.
    for i, loopback in enumerate((False, True, False)):
        if i == 0:
            driver.init_via_block(loopback=loopback)
        else:
            driver.init_rings(loopback=loopback)
        for size in (60, 128, 256, 200, 64, 250):
            header = bytes(rng.randrange(256) for _ in range(14))
            frame = header + bytes(size - 14)
            driver.send_frame(frame)
            if loopback:
                driver.read_frame(size + 4)
        if not loopback:
            for size in (40, 120, 250):
                driver.deliver_frame(bytes(rng.randrange(256)
                                           for _ in range(size)))
                driver.read_frame(size)
        driver.read_csr(0)
        driver.read_csr(76)
        driver.read_csr(15)
        # Doorbell with nothing queued: the no-work transmit path.
        driver.write_csr(0, 0x0008)

def _pcnet_tx(vm, driver, rng):
    size = rng.choice((60, 120, 200, 250))
    driver.send_frame(bytes(rng.randrange(256) for _ in range(size)))

def _pcnet_rx(vm, driver, rng):
    size = rng.choice((60, 120, 200))
    driver.deliver_frame(bytes(size))
    driver.read_frame(size)

def _pcnet_csr_status(vm, driver, rng):
    driver.read_csr(0)

def _pcnet_rare_read_xmtrl(vm, driver, rng):
    driver.read_csr(78)


# ---------------------------------------------------------------------------
# EHCI
# ---------------------------------------------------------------------------

def _ehci_prepare(vm: GuestVM, driver: EHCIDriver) -> None:
    driver.start_controller()
    driver.set_address(1)
    driver.set_configuration(1)

def _ehci_training(vm: GuestVM, device: Device,
                   rng: random.Random) -> None:
    driver = EHCIDriver(vm, BASE_PORTS["ehci"])
    driver.start_controller()
    driver.get_descriptor()
    driver.set_address(rng.randrange(1, 10))
    driver.set_configuration(1)
    for layout in FILESYSTEM_LAYOUTS.values():
        lba = layout["superblock_lba"]
        driver.write_block(lba, bytes([layout["fill"]]) * 512)
    for _ in range(6):
        lba = rng.randrange(0, 50)
        payload = bytes(rng.randrange(256) for _ in range(16)) * 32
        driver.write_block(lba, payload)
        assert driver.read_block(lba) == payload
    driver.status()

def _ehci_write(vm, driver, rng):
    driver.write_block(rng.randrange(0, 50),
                       bytes([rng.randrange(256)]) * 512)

def _ehci_read(vm, driver, rng):
    driver.read_block(rng.randrange(0, 50))

def _ehci_descriptor(vm, driver, rng):
    driver.get_descriptor()

def _ehci_hc_status(vm, driver, rng):
    driver.status()

def _ehci_rare_get_status(vm, driver, rng):
    driver.get_status()


# ---------------------------------------------------------------------------
# SDHCI
# ---------------------------------------------------------------------------

def _sdhci_prepare(vm: GuestVM, driver: SDHCIDriver) -> None:
    driver.reset_card()

def _sdhci_training(vm: GuestVM, device: Device,
                    rng: random.Random) -> None:
    driver = SDHCIDriver(vm, BASE_PORTS["sdhci"])
    driver.reset_card()
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.write_blocks(layout["superblock_lba"],
                            bytes([layout["fill"]]) * 512)
    for count in (1, 2, 4, 1, 2):
        lba = rng.randrange(0, 40)
        payload = bytes(rng.randrange(256) for _ in range(32)) \
            * (16 * count)
        driver.write_blocks(lba, payload)
        assert driver.read_blocks(lba, count) == payload
    driver.card_status()
    driver.read_cid()
    driver.read_csd()
    # An aborted multi-block read (STOP_TRANSMISSION mid-transfer).
    vm.outl(BASE_PORTS["sdhci"] + 1, 2)
    vm.outl(BASE_PORTS["sdhci"] + 2, 5)
    vm.outb(BASE_PORTS["sdhci"] + 3, 18)
    for _ in range(40):
        vm.inb(BASE_PORTS["sdhci"] + 4)
    driver.stop_transmission()
    # Benign corner interactions: data-port probes without an active
    # transfer (the controller reports an error status and carries on).
    vm.outb(BASE_PORTS["sdhci"] + 4, 0x00)
    vm.inb(BASE_PORTS["sdhci"] + 4)
    vm.inb(BASE_PORTS["sdhci"] + 5)

def _sdhci_write(vm, driver, rng):
    count = rng.choice((1, 2))
    driver.write_blocks(rng.randrange(0, 40), bytes(512 * count))

def _sdhci_read(vm, driver, rng):
    driver.read_blocks(rng.randrange(0, 40), rng.choice((1, 2)))

def _sdhci_status(vm, driver, rng):
    driver.card_status()

def _sdhci_rare_app(vm, driver, rng):
    vm.outb(BASE_PORTS["sdhci"] + 3, 55)       # CMD_APP

def _sdhci_rare_switch(vm, driver, rng):
    vm.outb(BASE_PORTS["sdhci"] + 3, 6)        # CMD_SWITCH


# ---------------------------------------------------------------------------
# SCSI
# ---------------------------------------------------------------------------

def _scsi_prepare(vm: GuestVM, driver: SCSIDriver) -> None:
    driver.reset()
    driver.test_unit_ready()

def _scsi_training(vm: GuestVM, device: Device,
                   rng: random.Random) -> None:
    driver = SCSIDriver(vm, BASE_PORTS["scsi"])
    driver.reset()
    driver.test_unit_ready()
    driver.inquiry()
    driver.read_capacity()
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.write10(layout["superblock_lba"],
                       bytes([layout["fill"]]) * 512)
    for blocks in (1, 2, 4, 1):
        lba = rng.randrange(0, 40)
        payload = bytes(rng.randrange(256) for _ in range(64)) \
            * (8 * blocks)
        driver.write10(lba, payload)
        assert driver.read10(lba, blocks) == payload
    # Benign corner interactions: FIFO overrun handling (gross error
    # status), data-port probes outside a data phase, ESP maintenance
    # commands, and an unknown ESP opcode (error-status path).
    for _ in range(17):
        vm.outb(BASE_PORTS["scsi"] + 0, 0x00)
    driver.reset()
    vm.inb(BASE_PORTS["scsi"] + 0)
    vm.outb(BASE_PORTS["scsi"] + 1, 0x00)
    vm.outb(BASE_PORTS["scsi"] + 3, 0x44)   # ENSEL
    vm.outb(BASE_PORTS["scsi"] + 3, 0x45)   # DISSEL
    vm.outb(BASE_PORTS["scsi"] + 3, 0x7F)   # unknown -> gross error
    vm.outb(BASE_PORTS["scsi"] + 3, 0x10)   # TI outside data phase
    vm.inb(BASE_PORTS["scsi"] + 3)
    driver.reset()
    # READ(6)/WRITE(6), the short-CDB forms.
    blk6 = bytes(rng.randrange(256) for _ in range(64)) * 8
    driver.write6(12, blk6)
    assert driver.read6(12) == blk6
    # An unsupported (but well-formed) opcode, then REQUEST SENSE to
    # fetch and clear the resulting CHECK CONDITION.
    driver._select([0x2F, 0, 0, 0, 1, 0])
    driver.request_sense()
    driver.reset()

def _scsi_write(vm, driver, rng):
    driver.write10(rng.randrange(0, 40), bytes(512))

def _scsi_read(vm, driver, rng):
    driver.read10(rng.randrange(0, 40))

def _scsi_tur(vm, driver, rng):
    driver.test_unit_ready()

def _scsi_inquiry(vm, driver, rng):
    driver.inquiry()

def _scsi_rare_mode_sense(vm, driver, rng):
    driver.mode_sense()


# ---------------------------------------------------------------------------

PROFILES: Dict[str, DeviceProfile] = {
    "fdc": DeviceProfile(
        name="fdc", base_port=BASE_PORTS["fdc"], kind="storage",
        make_driver=lambda vm: FDCDriver(vm, BASE_PORTS["fdc"]),
        training=_fdc_training, prepare=_fdc_prepare,
        common_ops=[_fdc_write, _fdc_read, _fdc_seek, _fdc_status,
                    _fdc_readid],
        op_weights=[0.15, 0.15, 0.2, 0.35, 0.15],
        rare_ops=[_fdc_rare_configure]),
    "pcnet": DeviceProfile(
        name="pcnet", base_port=BASE_PORTS["pcnet"], kind="network",
        make_driver=lambda vm: PCNetDriver(vm, BASE_PORTS["pcnet"]),
        training=_pcnet_training, prepare=_pcnet_prepare,
        common_ops=[_pcnet_tx, _pcnet_rx, _pcnet_csr_status],
        op_weights=[0.3, 0.3, 0.4],
        rare_ops=[_pcnet_rare_read_xmtrl]),
    "ehci": DeviceProfile(
        name="ehci", base_port=BASE_PORTS["ehci"], kind="storage",
        make_driver=lambda vm: EHCIDriver(vm, BASE_PORTS["ehci"]),
        training=_ehci_training, prepare=_ehci_prepare,
        common_ops=[_ehci_write, _ehci_read, _ehci_descriptor,
                    _ehci_hc_status],
        op_weights=[0.15, 0.15, 0.2, 0.5],
        rare_ops=[_ehci_rare_get_status], bus="mmio"),
    "sdhci": DeviceProfile(
        name="sdhci", base_port=BASE_PORTS["sdhci"], kind="storage",
        make_driver=lambda vm: SDHCIDriver(vm, BASE_PORTS["sdhci"]),
        training=_sdhci_training, prepare=_sdhci_prepare,
        common_ops=[_sdhci_write, _sdhci_read, _sdhci_status],
        op_weights=[0.15, 0.15, 0.7],
        rare_ops=[_sdhci_rare_app, _sdhci_rare_switch]),
    "scsi": DeviceProfile(
        name="scsi", base_port=BASE_PORTS["scsi"], kind="storage",
        make_driver=lambda vm: SCSIDriver(vm, BASE_PORTS["scsi"]),
        training=_scsi_training, prepare=_scsi_prepare,
        common_ops=[_scsi_write, _scsi_read, _scsi_tur, _scsi_inquiry],
        op_weights=[0.15, 0.15, 0.4, 0.3],
        rare_ops=[_scsi_rare_mode_sense]),
}


def profile(name: str) -> DeviceProfile:
    return PROFILES[name]


def train_device_spec(name: str, qemu_version: str = "99.0.0",
                      seed: int = 7, repeats: int = 2,
                      backend: str = "compiled"):
    """Convenience: run the full pipeline for one device profile."""
    from repro.core import build_execution_spec

    prof = PROFILES[name]

    def workload(vm, device):
        rng = random.Random(seed)
        for _ in range(repeats):
            prof.training(vm, device, rng)

    return build_execution_spec(
        lambda: prof.make_vm(qemu_version, backend=backend), workload)
