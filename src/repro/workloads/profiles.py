"""Per-device workload profiles.

A :class:`DeviceProfile` bundles everything the experiments need to know
about one device: how to build and attach it, how to drive *training*
traffic (Section IV-C: varied configurations and parameters), which guest
operations are *common* (exercised in training), and which are *rare* —
legitimate commands that training never saw, the paper's stated source of
false positives.

Scaling note: the paper trains with web/QTest-derived corpora and runs
30-hour workloads; our interpreted substrate runs the same protocol
traffic at reduced volume (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.devices.base import Device, create_device
from repro.vm.machine import GuestVM
from repro.vm.drivers.ehci import EHCIDriver
from repro.vm.drivers.fdc import FDCDriver
from repro.vm.drivers.pcnet import PCNetDriver
from repro.vm.drivers.scsi import SCSIDriver
from repro.vm.drivers.sdhci import SDHCIDriver
from repro.vm.drivers.virtio import VirtioBlkDriver, VirtioNetDriver

BASE_PORTS = {"fdc": 0x3F0, "pcnet": 0x300, "ehci": 0x400,
              "sdhci": 0x500, "scsi": 0x600,
              "virtio-net": 0x700, "virtio-blk": 0x800}

#: Synthetic stand-ins for the paper's storage configurations: each
#: "filesystem" writes its metadata at characteristic offsets/patterns.
FILESYSTEM_LAYOUTS = {
    "FAT32": {"superblock_lba": 0, "meta_stride": 2, "fill": 0xF6},
    "NTFS": {"superblock_lba": 0, "meta_stride": 4, "fill": 0x00},
    "EXT4": {"superblock_lba": 2, "meta_stride": 8, "fill": 0xEF},
}

Op = Callable[[GuestVM, object, random.Random], None]


@dataclass
class DeviceProfile:
    name: str
    base_port: int
    kind: str                      # "storage" | "network"
    make_driver: Callable[[GuestVM], object]
    training: Callable[[GuestVM, Device, random.Random], None]
    prepare: Callable[[GuestVM, object], None]
    common_ops: List[Op]
    rare_ops: List[Op]
    #: sampling weights aligned with common_ops (block I/O is weighted
    #: down so interaction cases mix light register traffic with data
    #: transfers the way real guests do)
    op_weights: Optional[List[float]] = None
    #: register bus: "pmio" (port I/O) or "mmio" (memory-mapped)
    bus: str = "pmio"

    def make_vm(self, qemu_version: str = "99.0.0",
                backend: str = "compiled") -> Tuple[GuestVM, Device]:
        vm = GuestVM()
        device = create_device(self.name, qemu_version=qemu_version,
                               backend=backend)
        if self.bus == "mmio":
            vm.attach_mmio_device(device, self.base_port)
        else:
            vm.attach_device(device, self.base_port)
        return vm, device

    def poke(self, vm: GuestVM, offset: int, value: int) -> None:
        """Raw register write on whichever bus the device uses."""
        if self.bus == "mmio":
            vm.mmio_write(self.base_port + offset, value)
        else:
            vm.outb(self.base_port + offset, value)

    def peek(self, vm: GuestVM, offset: int) -> int:
        if self.bus == "mmio":
            return vm.mmio_read(self.base_port + offset)
        return vm.inb(self.base_port + offset)


# ---------------------------------------------------------------------------
# FDC
# ---------------------------------------------------------------------------

def _fdc_prepare(vm: GuestVM, driver: FDCDriver) -> None:
    driver.controller_reset()
    driver.specify()

def _fdc_training(vm: GuestVM, device: Device, rng: random.Random) -> None:
    driver = FDCDriver(vm, BASE_PORTS["fdc"])
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.controller_reset()
        driver.specify()
        driver.version()
        driver.recalibrate()
        # "Format" the filesystem area, then metadata and file I/O.
        driver.format_track(1, sectors=2, filler=layout["fill"])
        for k in range(3):
            lba = layout["superblock_lba"] + k * layout["meta_stride"]
            driver.write_lba(lba, bytes([layout["fill"]]) * 512)
        for _ in range(6):
            lba = rng.randrange(0, 60)
            payload = bytes(rng.randrange(256) for _ in range(8)) * 64
            driver.write_lba(lba, payload)
            assert driver.read_lba(lba) == payload
        driver.seek(rng.randrange(0, 40))
        driver.read_id(0)
        driver.read_id(1)
        driver.msr()
        # Benign corner interactions real guests produce: polling the
        # DOR, probing the data port outside a command cycle (the
        # controller answers with an error status), sensing the drive.
        driver._in(2)
        driver._in(5)
        driver._command(0x04, [0])
        driver._results(1)
        driver._command(0x08, [])
        driver._out(5, 0x00)          # write during result phase
        driver._results(2)
        driver._out(4, 0x80)          # DSR software reset
        driver.sense_interrupt()
        driver._command(0x1F, [])     # unknown opcode: error result
        driver._results(1)
        driver.dumpreg()

def _fdc_write(vm, driver, rng):
    driver.write_lba(rng.randrange(0, 60),
                     bytes([rng.randrange(256)]) * 512)

def _fdc_read(vm, driver, rng):
    driver.read_lba(rng.randrange(0, 60))

def _fdc_seek(vm, driver, rng):
    driver.seek(rng.randrange(0, 79))

def _fdc_status(vm, driver, rng):
    driver.msr()

def _fdc_readid(vm, driver, rng):
    driver.read_id(rng.randrange(0, 2))

def _fdc_rare_configure(vm, driver, rng):
    driver.configure()

def _fdc_rare_dumpreg(vm, driver, rng):
    driver.dumpreg()


# ---------------------------------------------------------------------------
# PCNet
# ---------------------------------------------------------------------------

def _pcnet_prepare(vm: GuestVM, driver: PCNetDriver) -> None:
    driver.init_rings()

def _pcnet_training(vm: GuestVM, device: Device,
                    rng: random.Random) -> None:
    driver = PCNetDriver(vm, BASE_PORTS["pcnet"])
    # Vary "IP/MAC/gateway" payload headers, frame sizes incl. jumbo-ish,
    # and loopback mode — the paper's network training dimensions.
    for i, loopback in enumerate((False, True, False)):
        if i == 0:
            driver.init_via_block(loopback=loopback)
        else:
            driver.init_rings(loopback=loopback)
        for size in (60, 128, 256, 200, 64, 250):
            header = bytes(rng.randrange(256) for _ in range(14))
            frame = header + bytes(size - 14)
            driver.send_frame(frame)
            if loopback:
                driver.read_frame(size + 4)
        if not loopback:
            for size in (40, 120, 250):
                driver.deliver_frame(bytes(rng.randrange(256)
                                           for _ in range(size)))
                driver.read_frame(size)
        driver.read_csr(0)
        driver.read_csr(76)
        driver.read_csr(15)
        # Doorbell with nothing queued: the no-work transmit path.
        driver.write_csr(0, 0x0008)

def _pcnet_tx(vm, driver, rng):
    size = rng.choice((60, 120, 200, 250))
    driver.send_frame(bytes(rng.randrange(256) for _ in range(size)))

def _pcnet_rx(vm, driver, rng):
    size = rng.choice((60, 120, 200))
    driver.deliver_frame(bytes(size))
    driver.read_frame(size)

def _pcnet_csr_status(vm, driver, rng):
    driver.read_csr(0)

def _pcnet_rare_read_xmtrl(vm, driver, rng):
    driver.read_csr(78)


# ---------------------------------------------------------------------------
# EHCI
# ---------------------------------------------------------------------------

def _ehci_prepare(vm: GuestVM, driver: EHCIDriver) -> None:
    driver.start_controller()
    driver.set_address(1)
    driver.set_configuration(1)

def _ehci_training(vm: GuestVM, device: Device,
                   rng: random.Random) -> None:
    driver = EHCIDriver(vm, BASE_PORTS["ehci"])
    driver.start_controller()
    driver.get_descriptor()
    driver.set_address(rng.randrange(1, 10))
    driver.set_configuration(1)
    for layout in FILESYSTEM_LAYOUTS.values():
        lba = layout["superblock_lba"]
        driver.write_block(lba, bytes([layout["fill"]]) * 512)
    for _ in range(6):
        lba = rng.randrange(0, 50)
        payload = bytes(rng.randrange(256) for _ in range(16)) * 32
        driver.write_block(lba, payload)
        assert driver.read_block(lba) == payload
    driver.status()

def _ehci_write(vm, driver, rng):
    driver.write_block(rng.randrange(0, 50),
                       bytes([rng.randrange(256)]) * 512)

def _ehci_read(vm, driver, rng):
    driver.read_block(rng.randrange(0, 50))

def _ehci_descriptor(vm, driver, rng):
    driver.get_descriptor()

def _ehci_hc_status(vm, driver, rng):
    driver.status()

def _ehci_rare_get_status(vm, driver, rng):
    driver.get_status()


# ---------------------------------------------------------------------------
# SDHCI
# ---------------------------------------------------------------------------

def _sdhci_prepare(vm: GuestVM, driver: SDHCIDriver) -> None:
    driver.reset_card()

def _sdhci_training(vm: GuestVM, device: Device,
                    rng: random.Random) -> None:
    driver = SDHCIDriver(vm, BASE_PORTS["sdhci"])
    driver.reset_card()
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.write_blocks(layout["superblock_lba"],
                            bytes([layout["fill"]]) * 512)
    for count in (1, 2, 4, 1, 2):
        lba = rng.randrange(0, 40)
        payload = bytes(rng.randrange(256) for _ in range(32)) \
            * (16 * count)
        driver.write_blocks(lba, payload)
        assert driver.read_blocks(lba, count) == payload
    driver.card_status()
    driver.read_cid()
    driver.read_csd()
    # An aborted multi-block read (STOP_TRANSMISSION mid-transfer).
    vm.outl(BASE_PORTS["sdhci"] + 1, 2)
    vm.outl(BASE_PORTS["sdhci"] + 2, 5)
    vm.outb(BASE_PORTS["sdhci"] + 3, 18)
    for _ in range(40):
        vm.inb(BASE_PORTS["sdhci"] + 4)
    driver.stop_transmission()
    # Benign corner interactions: data-port probes without an active
    # transfer (the controller reports an error status and carries on).
    vm.outb(BASE_PORTS["sdhci"] + 4, 0x00)
    vm.inb(BASE_PORTS["sdhci"] + 4)
    vm.inb(BASE_PORTS["sdhci"] + 5)

def _sdhci_write(vm, driver, rng):
    count = rng.choice((1, 2))
    driver.write_blocks(rng.randrange(0, 40), bytes(512 * count))

def _sdhci_read(vm, driver, rng):
    driver.read_blocks(rng.randrange(0, 40), rng.choice((1, 2)))

def _sdhci_status(vm, driver, rng):
    driver.card_status()

def _sdhci_rare_app(vm, driver, rng):
    vm.outb(BASE_PORTS["sdhci"] + 3, 55)       # CMD_APP

def _sdhci_rare_switch(vm, driver, rng):
    vm.outb(BASE_PORTS["sdhci"] + 3, 6)        # CMD_SWITCH


# ---------------------------------------------------------------------------
# SCSI
# ---------------------------------------------------------------------------

def _scsi_prepare(vm: GuestVM, driver: SCSIDriver) -> None:
    driver.reset()
    driver.test_unit_ready()

def _scsi_training(vm: GuestVM, device: Device,
                   rng: random.Random) -> None:
    driver = SCSIDriver(vm, BASE_PORTS["scsi"])
    driver.reset()
    driver.test_unit_ready()
    driver.inquiry()
    driver.read_capacity()
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.write10(layout["superblock_lba"],
                       bytes([layout["fill"]]) * 512)
    for blocks in (1, 2, 4, 1):
        lba = rng.randrange(0, 40)
        payload = bytes(rng.randrange(256) for _ in range(64)) \
            * (8 * blocks)
        driver.write10(lba, payload)
        assert driver.read10(lba, blocks) == payload
    # Benign corner interactions: FIFO overrun handling (gross error
    # status), data-port probes outside a data phase, ESP maintenance
    # commands, and an unknown ESP opcode (error-status path).
    for _ in range(17):
        vm.outb(BASE_PORTS["scsi"] + 0, 0x00)
    driver.reset()
    vm.inb(BASE_PORTS["scsi"] + 0)
    vm.outb(BASE_PORTS["scsi"] + 1, 0x00)
    vm.outb(BASE_PORTS["scsi"] + 3, 0x44)   # ENSEL
    vm.outb(BASE_PORTS["scsi"] + 3, 0x45)   # DISSEL
    vm.outb(BASE_PORTS["scsi"] + 3, 0x7F)   # unknown -> gross error
    vm.outb(BASE_PORTS["scsi"] + 3, 0x10)   # TI outside data phase
    vm.inb(BASE_PORTS["scsi"] + 3)
    driver.reset()
    # READ(6)/WRITE(6), the short-CDB forms.
    blk6 = bytes(rng.randrange(256) for _ in range(64)) * 8
    driver.write6(12, blk6)
    assert driver.read6(12) == blk6
    # An unsupported (but well-formed) opcode, then REQUEST SENSE to
    # fetch and clear the resulting CHECK CONDITION.
    driver._select([0x2F, 0, 0, 0, 1, 0])
    driver.request_sense()
    driver.reset()

def _scsi_write(vm, driver, rng):
    driver.write10(rng.randrange(0, 40), bytes(512))

def _scsi_read(vm, driver, rng):
    driver.read10(rng.randrange(0, 40))

def _scsi_tur(vm, driver, rng):
    driver.test_unit_ready()

def _scsi_inquiry(vm, driver, rng):
    driver.inquiry()

def _scsi_rare_mode_sense(vm, driver, rng):
    driver.mode_sense()


# ---------------------------------------------------------------------------
# virtio-net
# ---------------------------------------------------------------------------

def _vnet_prepare(vm: GuestVM, driver: VirtioNetDriver) -> None:
    driver.bring_up()

def _vnet_training(vm: GuestVM, device: Device,
                   rng: random.Random) -> None:
    driver = VirtioNetDriver(vm, BASE_PORTS["virtio-net"])
    driver.negotiate()
    driver.setup_queues()
    # Queue-select probing, including the unbacked control queue slot.
    driver._reg_read(1)
    driver.select_queue(2, 0x5C00, 0)
    driver.setup_queues()
    # Premature delivery (no rx credit yet): guests race this across
    # resets, so the error path must be in the spec.
    driver.deliver_frame(bytes(40))
    driver.read_isr()
    driver.post_rx_buffers(2)
    # Single-descriptor frames across the size range.
    for size in (60, 128, 256, 512, 750, 1024):
        header = bytes(rng.randrange(256) for _ in range(14))
        driver.send_frame(header + bytes(size - 14))
        driver.read_isr()
    # Chained descriptors with varied splits.
    for total in (120, 300, 600, 900):
        payload = bytes(rng.randrange(256) for _ in range(total))
        cut = rng.randrange(30, total - 30)
        driver.send_frame(payload, chunks=[payload[:cut], payload[cut:]])
    three = bytes(rng.randrange(256) for _ in range(720))
    driver.send_frame(three, chunks=[three[:240], three[240:480],
                                     three[480:]])
    # Indirect sub-tables of 2..4 entries.
    for nchunks in (2, 3, 4):
        total = 180 * nchunks
        payload = bytes(rng.randrange(256) for _ in range(total))
        chunks = [payload[i * 180:(i + 1) * 180] for i in range(nchunks)]
        driver.send_frame(payload, chunks=chunks, indirect=True)
    # Receive path: deliver, drain, and over-drain (the drained branch).
    for size in (40, 120, 256):
        driver.post_rx_buffers()
        driver.deliver_frame(bytes(rng.randrange(256) for _ in range(size)))
        assert len(driver.read_frame(size)) == size
    driver.read_frame(2)            # drained: reads return zero
    driver.ctrl_ack()
    driver.read_isr()

def _vnet_tx(vm, driver, rng):
    size = rng.choice((60, 120, 200, 250, 512))
    driver.send_frame(bytes(rng.randrange(256) for _ in range(size)))

def _vnet_tx_chained(vm, driver, rng):
    size = rng.choice((200, 400, 600))
    payload = bytes(rng.randrange(256) for _ in range(size))
    half = size // 2
    driver.send_frame(payload, chunks=[payload[:half], payload[half:]])

def _vnet_tx_indirect(vm, driver, rng):
    size = rng.choice((360, 540))
    payload = bytes(size)
    third = size // 3
    driver.send_frame(payload, chunks=[payload[:third],
                                       payload[third:2 * third],
                                       payload[2 * third:]], indirect=True)

def _vnet_rx(vm, driver, rng):
    size = rng.choice((40, 120, 256))
    driver.post_rx_buffers()
    driver.deliver_frame(bytes(size))
    driver.read_frame(size)

def _vnet_status(vm, driver, rng):
    driver.read_isr()

def _vnet_rare_reset(vm, driver, rng):
    driver._reg_write(0, 0)            # device reset: status back to 0


# ---------------------------------------------------------------------------
# virtio-blk
# ---------------------------------------------------------------------------

def _vblk_prepare(vm: GuestVM, driver: VirtioBlkDriver) -> None:
    driver.bring_up()

def _vblk_training(vm: GuestVM, device: Device,
                   rng: random.Random) -> None:
    driver = VirtioBlkDriver(vm, BASE_PORTS["virtio-blk"])
    driver.negotiate()
    driver.setup_queues()
    driver._reg_read(1)
    driver.select_queue(2, 0x7C00, 0)
    driver.setup_queues()
    driver.post_event_credit()
    driver.read_capacity()
    for layout in FILESYSTEM_LAYOUTS.values():
        driver.write_blocks(layout["superblock_lba"],
                            bytes([layout["fill"]]) * 512)
    for count, chunked in ((1, False), (2, True), (1, True), (2, False)):
        lba = rng.randrange(0, 40)
        payload = bytes(rng.randrange(256) for _ in range(32)) \
            * (16 * count)
        if chunked:
            half = len(payload) // 2
            driver.write_blocks(lba, payload,
                                chunks=[payload[:half], payload[half:]])
        else:
            driver.write_blocks(lba, payload)
        assert driver.read_blocks(lba, min(len(payload), 1024)) \
            == payload[:1024]
        driver.read_isr()
    # Indirect data sub-tables of 2..3 entries.
    for nchunks in (2, 3):
        lba = rng.randrange(0, 40)
        total = 200 * nchunks
        payload = bytes(rng.randrange(256) for _ in range(total))
        chunks = [payload[i * 200:(i + 1) * 200] for i in range(nchunks)]
        driver.write_blocks(lba, payload, chunks=chunks, indirect=True)
    # Sub-sector read (metadata probe) and the ctrl register round trip.
    driver.read_blocks(2, 96)
    driver.ctrl_ack()
    driver.read_isr()

def _vblk_write(vm, driver, rng):
    driver.write_blocks(rng.randrange(0, 40),
                        bytes([rng.randrange(256)]) * 512)

def _vblk_write_chained(vm, driver, rng):
    payload = bytes([rng.randrange(256)]) * 1024
    driver.write_blocks(rng.randrange(0, 40), payload,
                        chunks=[payload[:512], payload[512:]])

def _vblk_read(vm, driver, rng):
    driver.read_blocks(rng.randrange(0, 40), rng.choice((96, 512, 1024)))

def _vblk_status(vm, driver, rng):
    driver.read_isr()

def _vblk_capacity(vm, driver, rng):
    driver.read_capacity()

def _vblk_rare_reset(vm, driver, rng):
    driver._reg_write(0, 0)


# ---------------------------------------------------------------------------

PROFILES: Dict[str, DeviceProfile] = {
    "fdc": DeviceProfile(
        name="fdc", base_port=BASE_PORTS["fdc"], kind="storage",
        make_driver=lambda vm: FDCDriver(vm, BASE_PORTS["fdc"]),
        training=_fdc_training, prepare=_fdc_prepare,
        common_ops=[_fdc_write, _fdc_read, _fdc_seek, _fdc_status,
                    _fdc_readid],
        op_weights=[0.15, 0.15, 0.2, 0.35, 0.15],
        rare_ops=[_fdc_rare_configure]),
    "pcnet": DeviceProfile(
        name="pcnet", base_port=BASE_PORTS["pcnet"], kind="network",
        make_driver=lambda vm: PCNetDriver(vm, BASE_PORTS["pcnet"]),
        training=_pcnet_training, prepare=_pcnet_prepare,
        common_ops=[_pcnet_tx, _pcnet_rx, _pcnet_csr_status],
        op_weights=[0.3, 0.3, 0.4],
        rare_ops=[_pcnet_rare_read_xmtrl]),
    "ehci": DeviceProfile(
        name="ehci", base_port=BASE_PORTS["ehci"], kind="storage",
        make_driver=lambda vm: EHCIDriver(vm, BASE_PORTS["ehci"]),
        training=_ehci_training, prepare=_ehci_prepare,
        common_ops=[_ehci_write, _ehci_read, _ehci_descriptor,
                    _ehci_hc_status],
        op_weights=[0.15, 0.15, 0.2, 0.5],
        rare_ops=[_ehci_rare_get_status], bus="mmio"),
    "sdhci": DeviceProfile(
        name="sdhci", base_port=BASE_PORTS["sdhci"], kind="storage",
        make_driver=lambda vm: SDHCIDriver(vm, BASE_PORTS["sdhci"]),
        training=_sdhci_training, prepare=_sdhci_prepare,
        common_ops=[_sdhci_write, _sdhci_read, _sdhci_status],
        op_weights=[0.15, 0.15, 0.7],
        rare_ops=[_sdhci_rare_app, _sdhci_rare_switch]),
    "scsi": DeviceProfile(
        name="scsi", base_port=BASE_PORTS["scsi"], kind="storage",
        make_driver=lambda vm: SCSIDriver(vm, BASE_PORTS["scsi"]),
        training=_scsi_training, prepare=_scsi_prepare,
        common_ops=[_scsi_write, _scsi_read, _scsi_tur, _scsi_inquiry],
        op_weights=[0.15, 0.15, 0.4, 0.3],
        rare_ops=[_scsi_rare_mode_sense]),
    "virtio-net": DeviceProfile(
        name="virtio-net", base_port=BASE_PORTS["virtio-net"],
        kind="network",
        make_driver=lambda vm: VirtioNetDriver(vm,
                                               BASE_PORTS["virtio-net"]),
        training=_vnet_training, prepare=_vnet_prepare,
        common_ops=[_vnet_tx, _vnet_tx_chained, _vnet_tx_indirect,
                    _vnet_rx, _vnet_status],
        op_weights=[0.25, 0.15, 0.15, 0.2, 0.25],
        rare_ops=[_vnet_rare_reset]),
    "virtio-blk": DeviceProfile(
        name="virtio-blk", base_port=BASE_PORTS["virtio-blk"],
        kind="storage",
        make_driver=lambda vm: VirtioBlkDriver(vm,
                                               BASE_PORTS["virtio-blk"]),
        training=_vblk_training, prepare=_vblk_prepare,
        common_ops=[_vblk_write, _vblk_write_chained, _vblk_read,
                    _vblk_status, _vblk_capacity],
        op_weights=[0.2, 0.15, 0.2, 0.25, 0.2],
        rare_ops=[_vblk_rare_reset]),
}


def split_device(name: str) -> Tuple[str, ...]:
    """``"fdc+virtio-net"`` → ``("fdc", "virtio-net")``.

    Composite names describe one *guest* driving several guarded devices;
    they never reach the device registry or the spec store, which remain
    strictly per-device."""
    return tuple(part for part in name.split("+") if part)


def is_composite(name: str) -> bool:
    return "+" in name


def profile(name: str) -> DeviceProfile:
    """Resolve a profile; composite ``a+b`` names synthesize (and cache)
    a multi-device profile that interleaves the parts' workloads."""
    if is_composite(name):
        from repro.workloads.multidevice import composite_profile
        return composite_profile(name)
    return PROFILES[name]


def train_device_spec(name: str, qemu_version: str = "99.0.0",
                      seed: int = 7, repeats: int = 2,
                      backend: str = "compiled"):
    """Convenience: run the full pipeline for one device profile."""
    from repro.core import build_execution_spec

    prof = PROFILES[name]

    def workload(vm, device):
        rng = random.Random(seed)
        for _ in range(repeats):
            prof.training(vm, device, rng)

    return build_execution_spec(
        lambda: prof.make_vm(qemu_version, backend=backend), workload)
