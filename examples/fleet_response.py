#!/usr/bin/env python3
"""Scenario: fleet operations — distributed spec training and automated
anomaly response (the paper's Section VIII future work, implemented).

Two "sites" train execution specifications on different workload slices;
the merged specification covers the union (the paper's remedy for false
positives).  A ResponsePolicy then handles a live exploit: rollback to a
pre-attack checkpoint and device quarantine, instead of killing the VM.
"""

import random

from repro.checker import AlertLevel, Mode, ResponsePolicy
from repro.core import build_execution_spec, deploy
from repro.exploits import exploit_by_cve
from repro.spec import coverage_gain, merge_specs
from repro.vm.machine import SEDSpecHalt
from repro.workloads.profiles import PROFILES


def train_site(profile, ops_subset):
    """One site trains on its own traffic mix."""
    def workload(vm, device):
        rng = random.Random(11)
        driver = profile.make_driver(vm)
        profile.prepare(vm, driver)
        for _ in range(25):
            rng.choice(ops_subset)(vm, driver, rng)

    return build_execution_spec(
        lambda: profile.make_vm("5.2.0"), workload).spec


def main() -> None:
    prof = PROFILES["sdhci"]

    # -- distributed training --------------------------------------------------
    site_a = train_site(prof, prof.common_ops[:2])    # block I/O heavy
    site_b = train_site(prof, prof.common_ops[1:])    # status heavy
    merged = merge_specs(site_a, site_b)
    print(f"site A spec: {site_a.block_count()} blocks; "
          f"site B: {site_b.block_count()}; merged: "
          f"{merged.block_count()}")
    print(f"site A was missing {coverage_gain(site_a, merged):.0%} of the "
          f"merged behaviour\n")

    # -- deployment with automated response -------------------------------------
    vm, device = prof.make_vm("5.2.0")     # CVE-2021-3409 vulnerable
    deploy(vm, device, merged, mode=Mode.PROTECTION)
    policy = ResponsePolicy(device)
    driver = prof.make_driver(vm)
    driver.reset_card()

    # Healthy traffic accumulates checkpoints.
    rng = random.Random(2)
    for _ in range(20):
        rng.choice(prof.common_ops)(vm, driver, rng)
        policy.on_clean_round()

    # The blksize-underflow exploit arrives.
    exploit = exploit_by_cve("CVE-2021-3409")
    try:
        exploit.run(vm, device)
    except SEDSpecHalt as halt:
        fresh = policy.on_report(halt.report)
        print(f"exploit flagged: {fresh[-1]}")

    print(f"response: rollbacks={policy.rollback.rollbacks}, "
          f"quarantined={policy.quarantine.is_quarantined('sdhci')}, "
          f"worst alert={policy.alerts.worst().name}")
    assert policy.alerts.worst() is AlertLevel.CRITICAL

    # The operator inspects, patches, and releases the device.
    policy.quarantine.release(device)
    driver.reset_card()
    driver.write_blocks(2, bytes(512))
    print("device recovered and serving I/O again")


if __name__ == "__main__":
    main()
