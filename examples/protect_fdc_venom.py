#!/usr/bin/env python3
"""Case study: stopping Venom (CVE-2015-3456) on a vulnerable QEMU 2.3.0
floppy controller.

Shows the two worlds side by side:

* **unprotected** — the exploit marches the FIFO cursor out of the
  512-byte FIFO, corrupts the controller state behind it, and finally
  crashes the emulator (in the real world: guest-to-host escape);
* **protected** — SEDSpec's parameter check flags the very first
  out-of-bounds FIFO store and halts the device before any corruption.
"""

from repro.checker import Mode
from repro.core import deploy
from repro.errors import DeviceFault
from repro.exploits import exploit_by_cve, run_exploit
from repro.vm.machine import SEDSpecHalt
from repro.workloads import train_device_spec
from repro.workloads.profiles import PROFILES

VENOM = exploit_by_cve("CVE-2015-3456")


def unprotected() -> None:
    prof = PROFILES["fdc"]
    vm, device = prof.make_vm(VENOM.qemu_version)
    outcome = run_exploit(vm, device, VENOM)
    print("UNPROTECTED qemu-2.3.0:")
    print(f"  device crashed: {outcome.device_faulted} "
          f"({outcome.fault_kind})")
    print(f"  controller state trashed: data_pos="
          f"{device.state.read_field('data_pos')}, data_len="
          f"{device.state.read_field('data_len')}")


def protected() -> None:
    # The spec is trained on the SAME vulnerable build — SEDSpec needs no
    # knowledge of the bug, only of legitimate behaviour.
    spec = train_device_spec("fdc", qemu_version=VENOM.qemu_version).spec
    prof = PROFILES["fdc"]
    vm, device = prof.make_vm(VENOM.qemu_version)
    deploy(vm, device, spec, mode=Mode.PROTECTION)
    outcome = run_exploit(vm, device, VENOM)
    print("\nPROTECTED qemu-2.3.0 (SEDSpec, protection mode):")
    print(f"  halted by: {outcome.halted_by}")
    print(f"  device survived: {not device.halted}")
    print(f"  controller state intact: data_pos="
          f"{device.state.read_field('data_pos')}, data_len="
          f"{device.state.read_field('data_len')}")


def main() -> None:
    unprotected()
    protected()


if __name__ == "__main__":
    main()
