#!/usr/bin/env python3
"""Scenario: monitoring a PCNet NIC in a multi-tenant host.

A cloud operator deploys SEDSpec in *enhancement* mode on the network
adapter: parameter-check hits halt the device (they are never false
positives), while conditional/indirect findings only alert — availability
first.  The script drives realistic traffic, then replays two attacks
from the paper's case studies and shows what the operator's alert stream
looks like.
"""

import random

from repro.checker import Mode, Strategy
from repro.core import deploy
from repro.exploits import exploit_by_cve, run_exploit
from repro.workloads import iperf, ping, train_device_spec
from repro.workloads.profiles import PROFILES


def main() -> None:
    spec = train_device_spec("pcnet", qemu_version="2.4.0").spec
    prof = PROFILES["pcnet"]

    # -- normal operation ---------------------------------------------------
    vm, device = prof.make_vm("2.4.0")
    attachment = deploy(vm, device, spec, mode=Mode.ENHANCEMENT)
    driver = prof.make_driver(vm)
    driver.init_rings()
    rng = random.Random(4)
    for _ in range(20):
        size = rng.choice((60, 120, 200))
        driver.send_frame(bytes(rng.randrange(256) for _ in range(size)))
    bandwidth = iperf(vm, driver, frames=8)
    latency = ping(vm, driver, count=5)
    print(f"traffic clean: {attachment.checked_rounds} rounds checked, "
          f"{len(attachment.warnings)} alerts")
    tcp_up = bandwidth.bandwidth[('tcp', 'up')]
    print(f"TCP up throughput {tcp_up.throughput_bytes_per_sec / 1e6:.1f} "
          f"MB/s, ping {latency.latency_sec_per_op * 1e6:.0f} us\n")

    # -- attack replay: CVE-2015-7504 (pointer hijack via loopback) ----------
    hijack = exploit_by_cve("CVE-2015-7504")
    vm, device = prof.make_vm("2.4.0")
    attachment = deploy(vm, device, spec, mode=Mode.ENHANCEMENT)
    outcome = run_exploit(vm, device, hijack)
    strategies = sorted(s.value for s in outcome.anomaly_strategies)
    print(f"{hijack.cve}: detected={outcome.detected} via {strategies}")
    assert Strategy.INDIRECT_JUMP in outcome.anomaly_strategies

    # -- attack replay: CVE-2016-7909 (rx ring infinite loop) ----------------
    spec26 = train_device_spec("pcnet", qemu_version="2.6.0").spec
    spin = exploit_by_cve("CVE-2016-7909")
    vm, device = prof.make_vm("2.6.0")
    deploy(vm, device, spec26, mode=Mode.PROTECTION)
    outcome = run_exploit(vm, device, spin)
    print(f"{spin.cve}: detected={outcome.detected} "
          f"via {sorted(s.value for s in outcome.anomaly_strategies)}")


if __name__ == "__main__":
    main()
