#!/usr/bin/env python3
"""Quickstart: protect one emulated device with SEDSpec in ~30 lines.

Runs the full Figure-1 pipeline on the SD host controller:

1. data collection + ES-CFG construction from benign training traffic,
2. deployment of the ES-Checker in front of the device,
3. normal guest I/O passing cleanly, and a never-trained (rare but
   legitimate) command drawing a conditional-jump warning.
"""

import random

from repro.checker import Mode
from repro.core import deploy
from repro.workloads import train_device_spec
from repro.workloads.profiles import PROFILES


def main() -> None:
    # Phase 1+2: trace benign traffic, build the execution specification.
    artifacts = train_device_spec("sdhci")
    spec = artifacts.spec
    print(spec.describe())
    print(f"trained from {artifacts.training_rounds} I/O rounds; "
          f"selected parameters: {sorted(artifacts.selection.selected)}\n")

    # Phase 3: deploy the ES-Checker in front of a fresh device.
    prof = PROFILES["sdhci"]
    vm, device = prof.make_vm()
    attachment = deploy(vm, device, spec, mode=Mode.ENHANCEMENT)
    driver = prof.make_driver(vm)
    driver.reset_card()

    # Ordinary guest I/O sails through.
    payload = bytes(random.Random(1).randrange(256) for _ in range(512))
    driver.write_blocks(5, payload)
    assert driver.read_blocks(5) == payload
    print(f"benign block I/O: {attachment.checked_rounds} rounds checked, "
          f"{len(attachment.warnings)} warnings")

    # A legitimate but never-trained command (SD CMD55 / APP_CMD):
    # enhancement mode warns and lets the device continue.
    vm.outb(prof.base_port + 3, 55)
    warning = attachment.warnings[-1].first_anomaly()
    print(f"rare command drew a warning: {warning}")

    # Per-I/O cost split, the basis of the performance evaluation.
    stats = vm.stats
    print(f"\ncycles: vmexit={stats.vmexit_cycles} "
          f"device={stats.device_cycles} checker={stats.checker_cycles} "
          f"(checker share "
          f"{100 * stats.checker_cycles / stats.total_cycles:.1f}%)")


if __name__ == "__main__":
    main()
