#!/usr/bin/env python3
"""Scenario: measuring what SEDSpec costs your storage stack.

Sweeps iozone-style record sizes over the four storage devices, with and
without SEDSpec, and prints normalized throughput/latency — the data
behind the paper's Figures 3 and 4 (claim: under 5% on both).
"""

from repro.eval import generate_storage_figures
from repro.eval.figures import STORAGE_DEVICES
from repro.workloads import train_device_spec


def main() -> None:
    print("training execution specifications for "
          f"{', '.join(STORAGE_DEVICES)} ...")
    specs = {name: train_device_spec(name).spec
             for name in STORAGE_DEVICES}

    fig3, fig4 = generate_storage_figures(
        specs, record_sizes=(512, 1024, 2048, 4096), records_per_size=2)

    print("\nnormalized throughput (baseline = 1.0):")
    print(fig3.render())
    print(f"worst-case throughput loss: "
          f"{fig3.max_overhead_percent():.2f}%  (paper bound: 5%)")

    print("\nnormalized latency (baseline = 1.0):")
    print(fig4.render())
    print(f"worst-case latency increase: "
          f"{fig4.max_overhead_percent():.2f}%  (paper bound: 5%)")


if __name__ == "__main__":
    main()
